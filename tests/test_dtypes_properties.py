"""Property-based tests (hypothesis) on the numeric type invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dtypes import FlintType, FloatType, IntType, PoTType

TYPE_FACTORIES = {
    "int": lambda bits, signed: IntType(bits, signed),
    "pot": lambda bits, signed: PoTType(bits, signed),
    "flint": lambda bits, signed: FlintType(bits, signed),
    "float": lambda bits, signed: FloatType(
        (bits - (1 if signed else 0) + 1) // 2,
        (bits - (1 if signed else 0)) // 2,
        signed,
    ),
}

dtype_strategy = st.builds(
    lambda kind, bits, signed: TYPE_FACTORIES[kind](bits, signed),
    kind=st.sampled_from(sorted(TYPE_FACTORIES)),
    bits=st.integers(min_value=3, max_value=8),
    signed=st.booleans(),
)


@given(dtype=dtype_strategy)
@settings(max_examples=60, deadline=None)
def test_grid_sorted_unique(dtype):
    grid = dtype.grid
    assert np.all(np.diff(grid) > 0)


@given(dtype=dtype_strategy)
@settings(max_examples=60, deadline=None)
def test_grid_contains_zero(dtype):
    assert 0.0 in dtype.grid


@given(dtype=dtype_strategy)
@settings(max_examples=40, deadline=None)
def test_roundtrip_whole_grid(dtype):
    grid = dtype.grid
    assert np.allclose(dtype.decode(dtype.encode(grid)), grid)


@given(
    dtype=dtype_strategy,
    data=st.lists(
        st.floats(min_value=-200, max_value=200, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
)
@settings(max_examples=60, deadline=None)
def test_quantize_idempotent(dtype, data):
    """Quantizing an already-quantized tensor is a no-op."""
    x = np.asarray(data)
    once = dtype.quantize(x)
    twice = dtype.quantize(once)
    assert np.allclose(once, twice)


@given(
    dtype=dtype_strategy,
    data=st.lists(
        st.floats(min_value=-200, max_value=200, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
)
@settings(max_examples=60, deadline=None)
def test_quantize_outputs_on_grid(dtype, data):
    q = dtype.quantize(np.asarray(data))
    grid = set(dtype.grid.tolist())
    assert all(v in grid for v in q.tolist())


@given(
    dtype=dtype_strategy,
    value=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_quantize_is_nearest_neighbour(dtype, value):
    """The chosen grid point is never farther than any other grid point."""
    q = dtype.quantize(np.array([value]))[0]
    clipped = np.clip(value, dtype.grid[0], dtype.grid[-1])
    best = np.min(np.abs(dtype.grid - clipped))
    assert abs(q - clipped) <= best + 1e-12


@given(
    dtype=dtype_strategy,
    scale=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    value=st.floats(min_value=-50, max_value=50, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_quantize_scale_equivariance(dtype, scale, value):
    """quantize(x, s) == s * quantize(x/s, 1)."""
    direct = dtype.quantize(np.array([value]), scale)[0]
    manual = scale * dtype.quantize(np.array([value / scale]), 1.0)[0]
    assert np.isclose(direct, manual, rtol=1e-9, atol=1e-12)


@given(bits=st.integers(min_value=3, max_value=10))
@settings(max_examples=8, deadline=None)
def test_flint_code_count_and_range(bits):
    """b-bit flint: 2^b distinct values, max 2^(2b-2), all integers."""
    flint = FlintType(bits, signed=False)
    grid = flint.grid
    assert grid.size == 1 << bits
    assert grid[-1] == 2 ** (2 * bits - 2)
    assert np.allclose(grid, np.round(grid))


@given(bits=st.integers(min_value=3, max_value=9))
@settings(max_examples=7, deadline=None)
def test_flint_low_region_matches_int(bits):
    """The bottom intervals of flint coincide with the int grid (Fig. 3)."""
    flint = FlintType(bits, signed=False)
    top_int = 2 ** (bits - 1)  # intervals with exponent <= b-2 cover [0, 2^(b-1))
    ints = np.arange(top_int)
    assert np.allclose(flint.quantize(ints.astype(float)), ints)


@given(
    bits=st.integers(min_value=3, max_value=8),
    signed=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_flint_mse_never_worse_than_clipping_everything(bits, signed, seed):
    """Quantization error is bounded by the tensor's own magnitude."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=256)
    if not signed:
        x = np.abs(x)
    flint = FlintType(bits, signed)
    mse = flint.mse(x, scale=float(np.max(np.abs(x))) / flint.max_value)
    assert mse <= float(np.mean(x**2)) + 1e-12
