"""Tests for the baseline quantization schemes of Table I."""

import numpy as np
import pytest

from repro.baselines import (
    AdaFloatQuantizer,
    BaselineModelQuantizer,
    BiScaledQuantizer,
    BitFusionQuantizer,
    GOBOQuantizer,
    IntQuantizer,
    OLAccelQuantizer,
)
from repro.data import sample_distribution
from repro.nn import Linear, ReLU, Sequential, Tensor

RNG = np.random.default_rng(5)
GAUSSIAN = sample_distribution("gaussian", 4096, seed=0)
HEAVY = sample_distribution("gaussian_outliers", 4096, seed=0)


class TestIntBaseline:
    def test_int8_low_error(self):
        scheme = IntQuantizer(8)
        assert scheme.weight_mse(GAUSSIAN) < 1e-3

    def test_int4_worse_than_int8(self):
        assert IntQuantizer(4).weight_mse(GAUSSIAN) > IntQuantizer(8).weight_mse(GAUSSIAN)

    def test_accounting(self):
        scheme = IntQuantizer(8)
        acct = scheme.accounting(scheme.calibrate_weight(GAUSSIAN), GAUSSIAN.size)
        assert acct.memory_bits == 8.0
        assert acct.aligned

    def test_unsigned_activation_detection(self):
        scheme = IntQuantizer(4)
        state = scheme.calibrate_activation(np.abs(GAUSSIAN))
        assert state["dtype"].signed is False


class TestAdaFloat:
    def test_bias_adapts_to_range(self):
        scheme = AdaFloatQuantizer(8)
        small = scheme.calibrate_weight(GAUSSIAN * 1e-3)
        large = scheme.calibrate_weight(GAUSSIAN * 1e3)
        assert small["bias"] > large["bias"]

    def test_beats_plain_float_scaling_on_gaussian(self):
        scheme = AdaFloatQuantizer(8)
        assert scheme.weight_mse(GAUSSIAN) < 1e-3

    def test_rejects_impossible_layout(self):
        with pytest.raises(ValueError):
            AdaFloatQuantizer(bits=4, exp_bits=4).calibrate_weight(GAUSSIAN)


class TestBitFusion:
    def test_easy_tensor_stays_4bit(self):
        scheme = BitFusionQuantizer(mse_budget=0.1)
        state = scheme.calibrate_weight(sample_distribution("uniform", 4096, seed=1))
        assert state["bits"] == 4

    def test_hard_tensor_escalates(self):
        scheme = BitFusionQuantizer(mse_budget=0.001)
        state = scheme.calibrate_weight(HEAVY)
        assert state["bits"] == 8

    def test_average_bits_between_4_and_8(self):
        scheme = BitFusionQuantizer()
        for x in (GAUSSIAN, HEAVY):
            state = scheme.calibrate_weight(x)
            acct = scheme.accounting(state, x.size)
            assert 4.0 <= acct.memory_bits <= 8.0


class TestOLAccel:
    def test_outliers_preserved(self):
        scheme = OLAccelQuantizer(outlier_fraction=0.03)
        state = scheme.calibrate_weight(HEAVY)
        q = scheme.quantize_weight(HEAVY, state)
        peak = np.argmax(np.abs(HEAVY))
        # the largest outlier survives at ~fp16 precision
        assert np.isclose(q[peak], HEAVY[peak], rtol=1e-3)

    def test_memory_bits_above_base(self):
        scheme = OLAccelQuantizer(bits=4, outlier_fraction=0.03)
        state = scheme.calibrate_weight(HEAVY)
        acct = scheme.accounting(state, HEAVY.size)
        assert 4.0 < acct.memory_bits < 6.0
        assert not acct.aligned

    def test_beats_plain_int4_on_outlier_tensor(self):
        assert (
            OLAccelQuantizer().weight_mse(HEAVY)
            < IntQuantizer(4).weight_mse(HEAVY)
        )

    def test_edge_layer_uses_8bit(self):
        assert OLAccelQuantizer(edge_layer=True).bits == 8


class TestGOBO:
    def test_weight_only(self):
        scheme = GOBOQuantizer(3)
        with pytest.raises(NotImplementedError):
            scheme.calibrate_activation(GAUSSIAN)

    def test_centroid_count(self):
        scheme = GOBOQuantizer(3)
        state = scheme.calibrate_weight(GAUSSIAN)
        assert state["centroids"].size == 8

    def test_effective_bits_close_to_base(self):
        """GOBO's 3.04-bit claim: tiny outlier overhead (Table VI)."""
        scheme = GOBOQuantizer(3)
        state = scheme.calibrate_weight(GAUSSIAN)
        bits = scheme.effective_bits(state, GAUSSIAN.size)
        assert 3.0 < bits < 3.6

    def test_outliers_kept_exact(self):
        scheme = GOBOQuantizer(3)
        state = scheme.calibrate_weight(HEAVY)
        q = scheme.quantize_weight(HEAVY, state)
        peak = np.argmax(np.abs(HEAVY))
        assert q[peak] == HEAVY[peak]

    def test_inliers_snap_to_centroids(self):
        scheme = GOBOQuantizer(3)
        state = scheme.calibrate_weight(GAUSSIAN)
        q = scheme.quantize_weight(GAUSSIAN, state)
        inlier_values = set(np.round(state["centroids"], 12))
        threshold = scheme.outlier_sigma * state["std"]
        inliers = np.abs(GAUSSIAN - state["mean"]) <= threshold
        assert all(np.round(v, 12) in inlier_values for v in q[inliers])

    def test_kmeans_handles_tiny_input(self):
        from repro.baselines.gobo import _kmeans_1d

        out = _kmeans_1d(np.array([1.0, 2.0]), k=8)
        assert out.size == 2


class TestBiScaled:
    def test_two_scales(self):
        scheme = BiScaledQuantizer(6, shift=3)
        state = scheme.calibrate_weight(HEAVY)
        assert np.isclose(state["coarse"], state["fine"] * 8)

    def test_tail_uses_coarse_scale(self):
        scheme = BiScaledQuantizer(6, shift=3)
        state = scheme.calibrate_weight(HEAVY)
        q = scheme.quantize_weight(HEAVY, state)
        peak = np.argmax(np.abs(HEAVY))
        # tail values are representable within the coarse range
        assert abs(q[peak]) > state["threshold"]

    def test_memory_bits_includes_mask(self):
        scheme = BiScaledQuantizer(6)
        state = scheme.calibrate_weight(GAUSSIAN)
        acct = scheme.accounting(state, GAUSSIAN.size)
        assert np.isclose(acct.memory_bits, 6.16)

    def test_worse_than_8bit_better_than_4bit_on_tails(self):
        mse_bs = BiScaledQuantizer(6).weight_mse(HEAVY)
        assert mse_bs < IntQuantizer(4).weight_mse(HEAVY)


class TestModelDriver:
    def _model_and_batch(self):
        model = Sequential(Linear(8, 16), ReLU(), Linear(16, 4))
        return model, RNG.normal(size=(16, 8))

    def test_calibrate_apply_remove(self):
        model, batch = self._model_and_batch()
        x = Tensor(RNG.normal(size=(4, 8)))
        reference = model(x).data
        driver = BaselineModelQuantizer(model, IntQuantizer(4)).calibrate(batch)
        driver.apply()
        quantized = model(x).data
        assert not np.allclose(reference, quantized)
        driver.remove()
        assert np.allclose(model(x).data, reference)

    def test_weights_only_mode(self):
        model, batch = self._model_and_batch()
        driver = BaselineModelQuantizer(model, GOBOQuantizer(3), weights_only=True)
        driver.calibrate(batch).apply()
        # activations untouched: input hook is None
        assert model._items[0].input_fake_quant is None
        assert model._items[0].weight_fake_quant is not None

    def test_average_bits(self):
        model, batch = self._model_and_batch()
        driver = BaselineModelQuantizer(model, IntQuantizer(8)).calibrate(batch)
        assert driver.average_bits() == 8.0

    def test_ste_passthrough_gradient(self):
        model, batch = self._model_and_batch()
        driver = BaselineModelQuantizer(model, IntQuantizer(4)).calibrate(batch)
        driver.apply()
        out = model(Tensor(RNG.normal(size=(4, 8))))
        out.sum().backward()
        for _, param in model.named_parameters():
            assert param.grad is not None
