"""Bit-exact decoder tests (Figs. 5-6, Eqs. 3-8, Table III)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import FlintType, IntType, PoTType
from repro.hardware.decoder import (
    FloatFlintDecoder,
    IntDecoder,
    IntFlintDecoder,
    PoTDecoder,
    codec_truth_table,
    decode_table,
    leading_zero_detect,
    verify_against_dtype,
    verify_all_decoders,
    verify_decoder_against_codec,
)

#: Table III of the paper: code -> (exponent, base integer, value)
TABLE_III = {
    0b0000: (0, 0, 0), 0b0001: (0, 1, 1), 0b0010: (0, 2, 2), 0b0011: (0, 3, 3),
    0b0100: (0, 4, 4), 0b0101: (0, 5, 5), 0b0110: (0, 6, 6), 0b0111: (0, 7, 7),
    0b1100: (0, 8, 8), 0b1101: (0, 10, 10), 0b1110: (0, 12, 12), 0b1111: (0, 14, 14),
    0b1010: (2, 4, 16), 0b1011: (2, 6, 24),
    0b1001: (4, 2, 32),
    0b1000: (6, 1, 64),
}


class TestLZD:
    def test_basic(self):
        assert leading_zero_detect(0b001, 3) == 2
        assert leading_zero_detect(0b100, 3) == 0
        assert leading_zero_detect(0, 3) == 3

    def test_range_check(self):
        with pytest.raises(ValueError):
            leading_zero_detect(8, 3)

    @given(value=st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_matches_bit_length(self, value):
        assert leading_zero_detect(value, 8) == 8 - value.bit_length()


class TestIntFlintDecoder:
    def test_table_iii_exact(self):
        decoder = IntFlintDecoder(4, signed=False)
        for code, (exp, base, value) in TABLE_III.items():
            decoded = decoder.decode(code)
            assert (decoded.exponent, decoded.base, decoded.value) == (exp, base, value), bin(code)

    def test_decode_table_helper(self):
        rows = decode_table(4)
        assert len(rows) == 16
        assert rows[0b1001]["value"] == 32

    @pytest.mark.parametrize("bits", [3, 4, 5, 6, 8])
    @pytest.mark.parametrize("signed", [False, True])
    def test_matches_software_flint(self, bits, signed):
        assert verify_against_dtype(bits, signed)

    def test_signed_sign_extraction(self):
        decoder = IntFlintDecoder(4, signed=True)
        flint = FlintType(4, signed=True)
        code = int(flint.encode(np.array([-6.0]))[0])
        decoded = decoder.decode(code)
        assert decoded.sign == 1
        assert decoded.value == -6

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IntFlintDecoder(4).decode(16)


class TestFloatFlintDecoder:
    def test_paper_example_1110(self):
        """Sec. V-A: 1110 has exponent 4, mantissa 0.5 -> 2^3 * 1.5 = 12."""
        decoder = FloatFlintDecoder(4, signed=False)
        decoded = decoder.decode(0b1110)
        assert decoded.exponent == 4
        assert decoded.fraction == 1.5
        assert decoded.value == 12.0

    def test_eq3_exponent_formula(self):
        """Exponent = 3 - LZD (b3=0) or 4 + LZD (b3=1) for 4-bit."""
        decoder = FloatFlintDecoder(4, signed=False)
        for code in range(1, 16):
            rest = code & 0b111
            lzd = leading_zero_detect(rest, 3)
            expected = (3 - lzd) if code < 8 else (4 + lzd)
            assert decoder.decode(code).exponent == expected

    def test_zero(self):
        assert FloatFlintDecoder(4).decode(0).value == 0.0

    @pytest.mark.parametrize("bits", [3, 4, 5, 6])
    def test_agrees_with_int_decoder(self, bits):
        fd = FloatFlintDecoder(bits)
        idec = IntFlintDecoder(bits)
        for code in range(1 << bits):
            assert float(idec.decode_value(code)) == fd.decode_value(code)


class TestUnifiedDecoders:
    def test_int_decoder_unsigned(self):
        decoded = IntDecoder(4, signed=False).decode(13)
        assert (decoded.base, decoded.exponent, decoded.value) == (13, 0, 13)

    def test_int_decoder_signed_twos_complement(self):
        dtype = IntType(4, signed=True)
        decoder = IntDecoder(4, signed=True)
        for value in range(-7, 8):
            code = int(dtype.encode(np.array([float(value)]))[0])
            assert decoder.decode(code).value == value

    def test_pot_decoder(self):
        dtype = PoTType(4, signed=False)
        decoder = PoTDecoder(4, signed=False)
        for code in range(16):
            assert decoder.decode(code).value == dtype.decode(np.array([code]))[0]

    def test_pot_decoder_signed(self):
        dtype = PoTType(4, signed=True)
        decoder = PoTDecoder(4, signed=True)
        for code in range(16):
            reference = float(dtype.decode(np.array([code]))[0])
            assert float(decoder.decode(code).value) == abs(reference) * (
                -1 if reference < 0 else 1
            )

    def test_all_unified_decoders_share_representation(self):
        """base << exponent reconstructs the value for every decoder."""
        for decoder in (IntFlintDecoder(4), IntDecoder(4), PoTDecoder(4)):
            for code in range(16):
                decoded = decoder.decode(code)
                assert decoded.value == decoded.base << decoded.exponent


class TestCodecAsSingleSourceOfTruth:
    """The RTL-style decoders validate against the GridCodec LUTs."""

    def test_codec_truth_table_matches_dtype_decode(self):
        dtype = FlintType(4, signed=False)
        table = codec_truth_table(dtype)
        assert len(table) == 16
        for row in table:
            assert row["value"] == float(dtype.decode(np.array([row["code"]]))[0])
            assert int(row["binary"], 2) == row["code"]

    @pytest.mark.parametrize("bits", [3, 4, 5, 6, 8])
    def test_every_decoder_matches_codec_lut(self, bits):
        assert verify_all_decoders(bits)

    def test_generic_verifier_catches_mismatch(self):
        """A decoder for the wrong type must fail verification."""
        assert not verify_decoder_against_codec(
            PoTDecoder(4, signed=False), IntType(4, signed=False)
        )
