"""Model-level quantization: framework, QAT, mixed precision."""

import numpy as np
import pytest

from repro.data import make_image_classification
from repro.nn import Linear, ReLU, Sequential, Tensor
from repro.nn.models import build_model
from repro.quant import ModelQuantizer, MixedPrecisionSearch
from repro.quant.framework import evaluate, quantizable_layers
from repro.quant.qat import FakeQuantOp, attach_fake_quant, detach_fake_quant, finetune
from repro.quant.quantizer import TensorQuantizer
from repro.dtypes import candidate_list

RNG = np.random.default_rng(4)


def tiny_mlp():
    return Sequential(Linear(8, 16), ReLU(), Linear(16, 4))


class TestModelQuantizer:
    def test_finds_quantizable_layers(self):
        model = build_model("vgg16")
        layers = quantizable_layers(model)
        assert len(layers) == 6  # 4 convs + 2 linears

    def test_calibrate_and_apply(self):
        model = tiny_mlp()
        batch = RNG.normal(size=(16, 8))
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(batch)
        assert len(mq.layers) == 2
        mq.apply()
        out = model(Tensor(RNG.normal(size=(4, 8))))
        assert out.shape == (4, 4)

    def test_apply_without_calibrate_fails(self):
        with pytest.raises(RuntimeError):
            ModelQuantizer(tiny_mlp()).apply()

    def test_activation_signedness_detected(self):
        model = tiny_mlp()
        batch = np.abs(RNG.normal(size=(16, 8)))  # non-negative input
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(batch)
        configs = list(mq.layers.values())
        assert configs[0].input_quantizer.dtype.signed is False
        # second layer input is post-ReLU, also unsigned
        assert configs[1].input_quantizer.dtype.signed is False

    def test_weights_quantized_per_channel(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(8, 8)))
        for cfg in mq.layers.values():
            assert cfg.weight_quantizer.scales is not None
            assert cfg.weight_quantizer.scales.shape[0] == cfg.module.weight.data.shape[0]

    def test_remove_restores_float(self):
        model = tiny_mlp()
        x = Tensor(RNG.normal(size=(4, 8)))
        reference = model(x).data
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        mq.apply()
        quantized = model(x).data
        mq.remove()
        restored = model(x).data
        assert np.allclose(reference, restored)
        assert not np.allclose(reference, quantized)

    def test_report_counts_tensors(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        report = mq.report()
        assert sum(report.type_counts.values()) == 4  # 2 layers x (w, a)
        assert report.average_bits == 4.0
        assert report.low_bit_tensor_fraction == 1.0

    def test_escalation_changes_report(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        name = next(iter(mq.layers))
        mq.escalate_layer(name, bits=8)
        report = mq.report()
        assert report.type_counts.get("int8", 0) == 2
        assert report.average_bits > 4.0

    def test_layer_mse_positive(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        scores = mq.layer_mse()
        assert all(v >= 0 for v in scores.values())
        assert len(scores) == 2


class TestQAT:
    def test_fake_quant_forward_matches_quantizer(self):
        quantizer = TensorQuantizer(candidate_list("ip-f", 4, True))
        data = RNG.normal(size=256)
        quantizer.calibrate(data)
        op = FakeQuantOp(quantizer)
        out = op(Tensor(data))
        assert np.allclose(out.data, quantizer(data))

    def test_ste_passes_gradient_inside_range(self):
        quantizer = TensorQuantizer(candidate_list("int", 4, True))
        data = RNG.normal(size=128)
        quantizer.calibrate(data)
        op = FakeQuantOp(quantizer)
        x = Tensor(data.copy(), requires_grad=True)
        op(x).sum().backward()
        limit = quantizer.choice.scale * quantizer.dtype.max_value
        inside = np.abs(data) <= limit
        assert np.allclose(x.grad[inside], 1.0)
        assert np.allclose(x.grad[~inside], 0.0)

    def test_ste_unsigned_blocks_negatives(self):
        quantizer = TensorQuantizer(candidate_list("int", 4, signed=False))
        data = np.abs(RNG.normal(size=128))
        quantizer.calibrate(data)
        op = FakeQuantOp(quantizer)
        mixed = np.concatenate([data[:4], [-1.0, -2.0]])
        x = Tensor(mixed, requires_grad=True)
        op(x).sum().backward()
        assert np.allclose(x.grad[-2:], 0.0)

    def test_attach_detach(self):
        model = tiny_mlp()
        q = TensorQuantizer(candidate_list("int", 4, True))
        q.calibrate(RNG.normal(size=64))
        attach_fake_quant(model, {"m0": q}, {})
        assert isinstance(model._items[0].weight_fake_quant, FakeQuantOp)
        detach_fake_quant(model)
        assert model._items[0].weight_fake_quant is None

    def test_finetune_reduces_loss(self):
        ds = make_image_classification(n_train=96, n_test=32, seed=5)
        model = build_model("vgg16")
        losses = []
        finetune(
            model, ds.x_train, ds.y_train, steps=15, lr=2e-3,
            loss_hook=lambda step, loss: losses.append(loss),
        )
        assert losses[-1] < losses[0]


class TestMixedPrecision:
    def test_escalates_until_threshold(self):
        """With a fake accuracy ramp, escalation stops at the threshold."""
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        mq.apply()
        state = {"accuracy": 0.80}

        def fake_eval():
            return state["accuracy"]

        def fake_finetune():
            state["accuracy"] = min(1.0, state["accuracy"] + 0.15)

        search = MixedPrecisionSearch(
            mq, fake_eval, baseline_accuracy=1.0, threshold=0.01,
            finetune_fn=fake_finetune,
        )
        result = search.run()
        assert result.accuracy_loss <= 0.01
        assert len(result.escalated) >= 1
        assert result.decisions[0].escalated_layer is None

    def test_respects_max_rounds(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        search = MixedPrecisionSearch(
            mq, lambda: 0.0, baseline_accuracy=1.0, threshold=0.01, max_rounds=1
        )
        result = search.run()
        assert len(result.escalated) == 1

    def test_no_escalation_when_accurate(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        search = MixedPrecisionSearch(
            mq, lambda: 1.0, baseline_accuracy=1.0, threshold=0.01
        )
        result = search.run()
        assert result.escalated == []
        assert result.rounds == 1

    def test_keeps_best_seen_configuration(self):
        """A degrading escalation round must not worsen the final result."""
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        mq.apply()
        # Accuracy ramps up, then collapses: 0.90, 0.95, 0.60, 0.60, ...
        ramp = iter([0.90, 0.95, 0.60])
        search = MixedPrecisionSearch(
            mq, lambda: next(ramp, 0.60), baseline_accuracy=1.0,
            threshold=0.01, max_rounds=2,
        )
        state_at_best = {name: mq.layer_state(name) for name in mq.layers}
        result = search.run()
        # Best was after the first escalation (loss 0.05), not the final
        # collapsed round (loss 0.40).
        assert result.accuracy == pytest.approx(0.95)
        assert result.accuracy_loss == pytest.approx(0.05)
        assert len(result.escalated) == 1
        assert result.rounds == 3  # trajectory is still fully recorded
        # The second escalation was reverted: exactly one layer is at int8.
        at_8bit = [
            name for name, cfg in mq.layers.items()
            if cfg.weight_quantizer.dtype.bits == 8
        ]
        assert at_8bit == result.escalated
        reverted = (set(mq.layers) - set(result.escalated)).pop()
        assert (
            mq.layers[reverted].weight_quantizer.get_state()
            == state_at_best[reverted]["weight"]
        )

    def test_escalation_order_follows_sensitivity(self):
        model = tiny_mlp()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(RNG.normal(size=(16, 8)))
        scores = mq.layer_sensitivity()
        worst = max(scores, key=scores.get)
        search = MixedPrecisionSearch(
            mq, lambda: 0.0, baseline_accuracy=1.0, threshold=0.01, max_rounds=1
        )
        result = search.run()
        assert result.escalated == [worst]


class TestEvaluate:
    def test_evaluate_accuracy(self):
        model = tiny_mlp()
        x = RNG.normal(size=(32, 8))
        with_labels = np.argmax(model(Tensor(x)).data, axis=1)
        assert evaluate(model, x, with_labels) == 1.0
        wrong = (with_labels + 1) % 4
        assert evaluate(model, x, wrong) == 0.0
