"""Streaming calibration: incremental Algorithm 2 statistics.

The load-bearing guarantees:

* with an unbounded reservoir, calibrating from an iterator of chunks
  selects **exactly** the types and scales single-batch calibration
  selects on the concatenated stream (the anchored sample *is* the
  stream);
* the classic single-batch path is dispatch-identical to before
  (``np.ndarray`` input never routes through streaming);
* bounded reservoirs are deterministic functions of the stream order,
  bounded in memory, and keep the exact stream extrema anchoring the
  scale sweeps.
"""

import numpy as np
import pytest

from repro.quant.framework import ModelQuantizer
from repro.quant.streaming import StreamingTensorStats
from repro.zoo import calibration_batch, trained_model


# ----------------------------------------------------------------------
# StreamingTensorStats
# ----------------------------------------------------------------------
def test_stats_running_moments_and_extrema():
    rng = np.random.default_rng(0)
    chunks = [rng.normal(size=(3, 50)) * (i + 1) for i in range(4)]
    stats = StreamingTensorStats(capacity=None)
    for chunk in chunks:
        stats.update(chunk)
    full = np.concatenate([c.ravel() for c in chunks])
    assert stats.count == full.size
    assert stats.minimum == full.min()
    assert stats.maximum == full.max()
    assert stats.mean == pytest.approx(full.mean())
    assert stats.variance == pytest.approx(full.var(), rel=1e-12)
    assert np.array_equal(stats.sample(), full)


def test_stats_bounded_reservoir_is_deterministic_and_bounded():
    rng = np.random.default_rng(1)
    chunks = [rng.normal(size=1000) for _ in range(20)]

    def run():
        stats = StreamingTensorStats(capacity=256)
        for chunk in chunks:
            stats.update(chunk)
        return stats

    first, second = run(), run()
    assert first.sample().size == 256
    assert np.array_equal(first.sample(), second.sample())
    anchored = first.anchored_sample()
    assert anchored.size == 258
    assert anchored.min() == first.minimum
    assert anchored.max() == first.maximum


def test_stats_reservoir_stays_uniformish():
    """Late stream elements must still enter a full reservoir."""
    stats = StreamingTensorStats(capacity=100)
    stats.update(np.zeros(1000))
    stats.update(np.ones(1000))
    sample = stats.sample()
    # ~half the mass arrived after the reservoir filled; a frozen
    # reservoir would contain no ones at all
    assert 10 < sample.sum() < 90


def test_stats_rejects_nonfinite_and_empty():
    stats = StreamingTensorStats(capacity=16)
    with pytest.raises(ValueError):
        stats.update(np.array([1.0, np.nan]))
    with pytest.raises(ValueError):
        stats.sample()
    stats.update(np.array([]))  # empty batches are skipped, not errors
    with pytest.raises(ValueError):
        stats.sample()
    with pytest.raises(ValueError):
        StreamingTensorStats(capacity=1)


# ----------------------------------------------------------------------
# ModelQuantizer.calibrate over an iterator
# ----------------------------------------------------------------------
def test_streaming_unbounded_matches_single_batch_exactly():
    entry = trained_model("vgg16")
    batch = calibration_batch(entry.dataset)

    single = ModelQuantizer(entry.model, "ip-f", 4, max_calibration_samples=None)
    single.calibrate(batch)
    streamed = ModelQuantizer(entry.model, "ip-f", 4, max_calibration_samples=None)
    streamed.calibrate(batch[start: start + 25] for start in range(0, 100, 25))

    for name in single.layers:
        a = single.layers[name]
        b = streamed.layers[name]
        assert a.input_quantizer.dtype.name == b.input_quantizer.dtype.name, name
        assert a.input_quantizer.choice.scale == b.input_quantizer.choice.scale, name
        assert a.weight_quantizer.dtype.name == b.weight_quantizer.dtype.name
        assert np.array_equal(a.weight_quantizer.scales, b.weight_quantizer.scales)


def test_streaming_bounded_end_to_end():
    """Bounded reservoir: calibrate from a long generator, freeze,
    escalate -- the full lifecycle works without holding the stream."""
    entry = trained_model("vgg16")
    batch = calibration_batch(entry.dataset)

    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(batch[start: start + 10] for start in range(0, 100, 10))
    frozen = quantizer.freeze(model_name="vgg16", dtype=np.float32)
    x = entry.dataset.x_test[:64]
    logits = frozen.predict(x)
    assert logits.shape == (64, 10)
    assert np.all(np.isfinite(logits))
    # escalation re-searches scales off the streamed samples
    first = next(iter(quantizer.layers))
    quantizer.escalate_layer(first, bits=8)
    assert quantizer.layers[first].input_quantizer.bits == 8


def test_streaming_signedness_uses_exact_stream_extrema():
    """Signedness comes from the exact stream minimum (which the
    reservoir may drop), so it must match the single-batch decision on
    the same data for every layer."""
    entry = trained_model("vgg16")
    batch = calibration_batch(entry.dataset)
    single = ModelQuantizer(entry.model, "ip-f", 4)
    single.calibrate(batch)
    streamed = ModelQuantizer(entry.model, "ip-f", 4)
    streamed.calibrate(batch[start: start + 10] for start in range(0, 100, 10))
    for name in single.layers:
        assert (
            single.layers[name].input_quantizer.dtype.signed
            == streamed.layers[name].input_quantizer.dtype.signed
        ), name


def test_streaming_empty_iterator_raises():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    with pytest.raises(ValueError):
        quantizer.calibrate(iter([]))
