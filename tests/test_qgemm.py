"""Code-domain GEMM engine: LUTs, kernels, backend, hardware bridge.

The load-bearing guarantees:

* partial-product tables are exactly ``decode_lut[cw] * grid[ca]`` for
  every registered (weight, activation) type pair at bits 3..8, with a
  zero pad column;
* the gather kernel is **bit-identical** to the decode-then-multiply
  reference (same reduction order) for every type pair, and the
  bincount kernel is bit-identical whenever the table is integral (the
  int x int accumulation the paper's PE performs natively);
* ``backend="qgemm"`` reproduces the hook-based fake-quant model to
  <= 1e-9 on every zoo workload in float64 (the same parity bar as the
  float backend in ``test_runtime.py``), keeps float32 argmax parity,
  and works unchanged through ``FrozenModel.predict``, checkpoints,
  and mixed-precision escalation;
* the cost meter counts exactly the executed GEMM work and bridges it
  into the ``hardware/`` latency/energy models.
"""

import numpy as np
import pytest

from repro.dtypes import get_type
from repro.nn.autograd import Tensor, no_grad
from repro.qgemm import (
    CostMeter,
    QGemmBackend,
    code_gemm,
    code_gemm_bincount,
    code_gemm_gather,
    code_gemm_pair,
    code_gemm_popcount,
    executed_assignment,
    lut_footprint_report,
    pair_product_lut,
    partial_product_lut,
    select_kernel,
    simulate_executed,
    simulate_executed_tensorcore,
)
from repro.qgemm.kernels import im2col_codes_nchw, im2col_codes_nhwc
from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel, get_backend
from repro.zoo import calibration_batch, trained_model

RNG = np.random.default_rng(0)

KINDS = ("int", "pot", "flint", "float")

#: every name the quantizer can select from any combination at any
#: calibration width: all four kinds, signed and unsigned, bits 3..8.
ALL_NAMES = [
    f"{kind}{bits}{suffix}"
    for kind in KINDS
    for bits in range(3, 9)
    for suffix in ("", "u")
]

WORKLOADS = [
    "vgg16",
    "resnet18",
    "resnet50",
    "inceptionv3",
    "vit",
    "bert-mnli",
    "bert-cola",
    "bert-sst2",
]


def _random_operands(w_name, a_name, rows=7, k=33, cols=5):
    """Random code/index operand matrices valid for the pair's table."""
    lut = partial_product_lut(w_name, a_name)
    w_codec = get_type(w_name).codec
    # canonical codes only (what packed exports contain)
    w_codes = w_codec.grid_codes[
        RNG.integers(0, w_codec.grid.size, size=(k, cols))
    ]
    # activation indices include the pad column, as conv rows do
    act_idx = RNG.integers(0, lut.n_act_cols, size=(rows, k))
    return act_idx, w_codes, lut


def _reference_gemm(act_idx, w_codes, lut):
    """Decode-then-multiply in the gather kernel's reduction order."""
    w_vals = get_type(lut.w_dtype_name).codec.decode_lut[w_codes]  # (k, cols)
    a_codec = get_type(lut.a_dtype_name).codec
    a_grid = np.concatenate([a_codec.grid, [0.0]])
    a_vals = a_grid[act_idx]  # (rows, k)
    return (a_vals[:, :, None] * w_vals[None, :, :]).sum(axis=1)


# ----------------------------------------------------------------------
# Partial-product tables
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_NAMES)
def test_lut_entries_are_exact_products(name):
    """Entry [cw, ca] is the exact float64 product for every pair that
    includes ``name`` on either side (against int4u on the other)."""
    for w_name, a_name in ((name, "int4u"), ("int4", name)):
        lut = partial_product_lut(w_name, a_name)
        w_codec = get_type(w_name).codec
        a_codec = get_type(a_name).codec
        assert lut.table.shape == (w_codec.n_codes, a_codec.grid.size + 1)
        assert np.array_equal(
            lut.table[:, : a_codec.grid.size],
            w_codec.decode_lut[:, None] * a_codec.grid[None, :],
        )
        assert np.all(lut.table[:, lut.pad_col] == 0.0)


def test_lut_integrality_flags():
    assert partial_product_lut("int4", "int4u").integral
    assert partial_product_lut("flint4", "int4u").integral  # flint grid is integral
    assert not partial_product_lut("float4", "int4u").integral  # halves
    # wide PoT products overflow float64's exact-integer range: the
    # flag must demote them to the gather kernel
    assert not partial_product_lut("pot8", "int8u").integral


def test_lut_cache_and_footprint():
    assert partial_product_lut("int4", "int4u") is partial_product_lut(
        "int4", "int4u"
    )
    report = lut_footprint_report([("int4", "int4u"), ("int8", "int8u")])
    a_cols = get_type("int4u").codec.grid.size + 1  # + zero pad column
    assert report["int4xint4u"]["float64_bytes"] == 16 * a_cols * 8
    assert report["int8xint8u"]["rows"] == 256


# ----------------------------------------------------------------------
# Accumulation kernels vs the decode-then-multiply reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("w_name", ALL_NAMES)
@pytest.mark.parametrize("a_kind", KINDS)
def test_gather_kernel_bit_identical(w_name, a_kind):
    """Gather accumulation == decode-then-multiply, bit for bit, for
    every weight type crossed with every activation kind (matching
    bits/signedness sweeps ride on the weight-side parametrization)."""
    bits = get_type(w_name).bits
    a_name = f"{a_kind}{bits}u"
    act_idx, w_codes, lut = _random_operands(w_name, a_name)
    out = code_gemm_gather(act_idx, w_codes, lut)
    assert np.array_equal(out, _reference_gemm(act_idx, w_codes, lut))


@pytest.mark.parametrize("blocks", [1, 3, 64])
def test_gather_kernel_blocking_invariant(blocks):
    act_idx, w_codes, lut = _random_operands("flint4", "int4u", rows=64, k=20)
    full = code_gemm_gather(act_idx, w_codes, lut)
    blocked = code_gemm_gather(
        act_idx, w_codes, lut, block_elems=max(1, act_idx.shape[1] * 5 * blocks)
    )
    assert np.array_equal(full, blocked)


@pytest.mark.parametrize("bits", range(3, 9))
@pytest.mark.parametrize("w_kind", ["int", "pot", "flint"])
def test_bincount_kernel_exact_for_integral_tables(w_kind, bits):
    """Histogram accumulation is exact (bit-identical to the reference)
    whenever the table is integral -- int/pot/flint weights at every
    width against int activations."""
    w_name = f"{w_kind}{bits}"
    a_name = f"int{bits}u"
    lut = partial_product_lut(w_name, a_name)
    if not lut.integral:
        # wide PoT grids (pot7/pot8) overflow float64's exact-integer
        # range; the flag correctly demotes them to the gather kernel
        assert w_kind == "pot" and bits >= 7
        pytest.skip("table exceeds the exact-integer range")
    act_idx, w_codes, lut = _random_operands(w_name, a_name, rows=11, k=700)
    out = code_gemm_bincount(act_idx, w_codes, lut)
    assert np.array_equal(out, _reference_gemm(act_idx, w_codes, lut))


def test_bincount_kernel_close_for_float_tables():
    """On non-integral tables the histogram contraction reassociates:
    close, but not the bit-exact path (auto never picks it in float64)."""
    act_idx, w_codes, lut = _random_operands("float4", "float4u", k=700)
    out = code_gemm_bincount(act_idx, w_codes, lut)
    ref = _reference_gemm(act_idx, w_codes, lut)
    assert np.abs(out - ref).max() <= 1e-9 * max(1.0, np.abs(ref).max())
    auto = code_gemm(act_idx, w_codes, lut, mode="auto")
    assert np.array_equal(auto, ref)


def test_code_gemm_auto_picks_bincount_when_exact_and_cheaper():
    act_idx, w_codes, lut = _random_operands("int4", "int4u", k=700)
    auto = code_gemm(act_idx, w_codes, lut, mode="auto")
    assert np.array_equal(auto, code_gemm_bincount(act_idx, w_codes, lut))
    assert np.array_equal(auto, _reference_gemm(act_idx, w_codes, lut))


def test_code_gemm_rejects_bad_operands():
    act_idx, w_codes, lut = _random_operands("int4", "int4u")
    with pytest.raises(ValueError, match="unknown code_gemm mode"):
        code_gemm(act_idx, w_codes, lut, mode="nope")
    with pytest.raises(ValueError, match="inner dimensions"):
        code_gemm(act_idx[:, :-1], w_codes, lut)
    with pytest.raises(ValueError, match="out of range"):
        code_gemm(act_idx + lut.n_act_cols, w_codes, lut)
    with pytest.raises(ValueError, match="out of range"):
        code_gemm(act_idx, w_codes + lut.n_weight_codes, lut)


def test_code_gemm_zero_depth():
    lut = partial_product_lut("int4", "int4u")
    out = code_gemm(np.empty((3, 0), dtype=np.int64), np.empty((0, 2), dtype=np.int64), lut)
    assert out.shape == (3, 2) and np.all(out == 0.0)


# ----------------------------------------------------------------------
# Pair-packed, integer-accumulate, and popcount kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("w_name", ALL_NAMES)
@pytest.mark.parametrize("k", [5, 8])
def test_pair_kernel_bit_identical(w_name, k):
    """Pair-packed gathers match the gather reference bit for bit at
    odd and even depths (pad column included) for every registered
    weight type whose pair table exists and certifies the depth."""
    bits = get_type(w_name).bits
    a_name = f"int{bits}u"
    pair = pair_product_lut(w_name, a_name)
    if pair is None:
        pytest.skip("pair table refused by the footprint policy")
    act_idx, w_codes, lut = _random_operands(w_name, a_name, rows=9, k=k)
    ref = code_gemm_gather(act_idx, w_codes, lut)
    if (k + 1) // 2 + 1 > pair.exact_pair_depth(2.0**53):
        pytest.skip("depth not certified; auto keeps the gather kernel")
    out = code_gemm_pair(act_idx, w_codes, pair)
    assert np.array_equal(out, ref)
    if pair.int16_ok:
        out_int = code_gemm_pair(act_idx, w_codes, pair, int_accumulate=True)
        assert np.array_equal(out_int, ref)


def test_pair_kernel_layouts_agree():
    """The tall row-major inner loop (engaged above
    PAIR_TRANSPOSE_MAX_ROWS) and the transposed loop produce identical
    bits."""
    from repro.qgemm.kernels import PAIR_TRANSPOSE_MAX_ROWS

    act_idx, w_codes, lut = _random_operands(
        "int4", "int4u", rows=PAIR_TRANSPOSE_MAX_ROWS + 8, k=7, cols=3
    )
    pair = pair_product_lut("int4", "int4u")
    ref = code_gemm_gather(act_idx, w_codes, lut)
    assert np.array_equal(code_gemm_pair(act_idx, w_codes, pair), ref)
    assert np.array_equal(
        code_gemm_pair(act_idx[:64], w_codes, pair), ref[:64]
    )


@pytest.mark.parametrize("k", [6, 7])
def test_pair_stationary_matches_pair(k):
    """The float32 weight-stationary serving variant (per-layer table,
    output scale pre-folded) agrees with the pair kernel: bit-identical
    without a scale, within float32 rounding with one."""
    from repro.qgemm.kernels import (
        code_gemm_pair_stationary,
        pair_stationary_tables,
        pair_weight_codes,
    )

    act_idx, w_codes, lut = _random_operands("int4", "int4u", rows=70, k=k)
    pair = pair_product_lut("int4", "int4u")
    w_pair, w_tail = pair_weight_codes(w_codes, pair)

    stat, tail = pair_stationary_tables(w_pair, w_tail, pair, np.float32)
    out = code_gemm_pair_stationary(act_idx, stat, tail, pair, np.float32)
    ref = code_gemm_pair(act_idx, w_codes, pair, out_dtype=np.float32)
    assert out.dtype == np.float32
    assert np.array_equal(out, ref)

    scale = np.linspace(0.5, 2.0, w_codes.shape[1], dtype=np.float32)
    stat_s, tail_s = pair_stationary_tables(
        w_pair, w_tail, pair, np.float32, out_scale=scale
    )
    out_s = code_gemm_pair_stationary(act_idx, stat_s, tail_s, pair, np.float32)
    np.testing.assert_allclose(out_s, ref * scale, rtol=1e-5, atol=1e-6)

    with pytest.raises(ValueError, match="out of range"):
        code_gemm_pair_stationary(
            act_idx + lut.n_act_cols, stat, tail, pair, np.float32
        )


def test_backend_folds_scale_into_stationary_table():
    """float32 pair layers under the stationary budget skip the
    output-scale pass (the table carries it); float64 never does."""
    from repro.qgemm.backend import QGemmBackend
    from repro.qgemm.kernels import (
        PAIR_STATIONARY_MAX_ELEMS,
        PAIR_STATIONARY_TOTAL_MAX_ELEMS,
    )

    backend = QGemmBackend()
    rng = np.random.default_rng(7)
    lut = partial_product_lut("int4", "int4u")
    wcodes = rng.integers(0, 16, size=(8, 4))
    scale = np.full(4, 0.25, dtype=np.float32)
    *_, folded32, executed32 = backend._compile_gemm(
        wcodes, lut, "pair", np.dtype(np.float32), out_scale=scale
    )
    assert folded32 and executed32 == "pair-stat"
    *_, folded64, executed64 = backend._compile_gemm(
        wcodes, lut, "pair", np.dtype(np.float64),
        out_scale=scale.astype(np.float64),
    )
    assert not folded64 and executed64 == "pair"
    # a layer past the per-pass budget still goes stationary (the
    # kernel k-chunks the table); only the hard cap falls back to the
    # shared pair table's per-column loop
    kh_budget = PAIR_STATIONARY_MAX_ELEMS // (17 * 17 * 4)
    deep = rng.integers(0, 16, size=(2 * kh_budget + 2, 4))
    *_, folded_deep, executed_deep = backend._compile_gemm(
        deep, lut, "pair", np.dtype(np.float32), out_scale=scale
    )
    assert folded_deep and executed_deep == "pair-stat"
    kh_cap = PAIR_STATIONARY_TOTAL_MAX_ELEMS // (17 * 17 * 4)
    big = rng.integers(0, 16, size=(2 * kh_cap + 2, 4))
    *_, folded_big, executed_big = backend._compile_gemm(
        big, lut, "pair", np.dtype(np.float32), out_scale=scale
    )
    assert not folded_big and executed_big == "pair"


def test_pair_int_depth_bound_enforced():
    """Reduction depths past the certified int32 bound are rejected
    instead of silently overflowing."""
    from repro.qgemm.luts import PairProductLUT

    real = pair_product_lut("int4", "int4u")
    tight = PairProductLUT(
        base=real.base, table=real.table,
        exact_exp=real.exact_exp, max_scaled_abs=2.0**28,
    )
    assert tight.exact_pair_depth(float(2**31 - 1)) == 6
    act_idx, w_codes, _ = _random_operands("int4", "int4u", rows=3, k=16)
    with pytest.raises(ValueError, match="not certified"):
        code_gemm_pair(act_idx, w_codes, tight, int_accumulate=True)
    # an uncertified pair table certifies no depth at all
    void = PairProductLUT(
        base=real.base, table=real.table, exact_exp=None, max_scaled_abs=0.0
    )
    assert void.exact_pair_depth(2.0**53) == 0


@pytest.mark.parametrize(
    "pair_names", [("int2", "int2u"), ("pot2", "int2u"), ("int2", "int3u")]
)
def test_popcount_kernel_bit_identical(pair_names):
    """Bit-plane popcount accumulation is exact for tiny code spaces,
    including the k % 64 != 0 padding words and the zero pad column."""
    w_name, a_name = pair_names
    for k in (33, 64, 130):
        act_idx, w_codes, lut = _random_operands(
            w_name, a_name, rows=6, k=k, cols=4
        )
        out = code_gemm_popcount(act_idx, w_codes, lut)
        assert np.array_equal(out, code_gemm_gather(act_idx, w_codes, lut))


def test_popcount_kernel_exact_one_bit_table():
    """No 1-bit types are registered; a hand-built binary table shows
    the kernel holds down to the 1-bit x 1-bit case."""
    from repro.qgemm.luts import PartialProductLUT

    table = np.array([[0.0, 0.0, 0.0], [0.0, 1.0, 0.0]])  # w in {0,1}, a in {0,1,pad}
    table.setflags(write=False)
    lut1 = PartialProductLUT(
        w_dtype_name="bit1", a_dtype_name="bit1u", table=table,
        pad_col=2, integral=True, exact_exp=0, max_scaled_abs=1.0,
    )
    act_idx = RNG.integers(0, 3, size=(5, 100))
    w_codes = RNG.integers(0, 2, size=(100, 4))
    out = code_gemm_popcount(act_idx, w_codes, lut1)
    # out[r, o] counts positions where both operands are 1
    ref = ((act_idx == 1)[:, :, None] & (w_codes == 1)[None, :, :]).sum(axis=1)
    assert np.array_equal(out, ref.astype(np.float64))
    assert np.array_equal(out, code_gemm_gather(act_idx, w_codes, lut1))


def test_select_kernel_compile_time_rules():
    """The per-layer auto rule: popcount for tiny code spaces at depth,
    pair-int / pair under the certificate, bincount for integral
    tables wider than the pair policy allows, gather otherwise."""
    f64, f32 = np.float64, np.float32
    lut44 = partial_product_lut("int4", "flint4u")
    assert select_kernel(lut44, 512, f64) == "pair-int"
    assert select_kernel(lut44, 512, f32) == "pair"
    # pot4 products overflow the int16 scaled range but certify in f64
    lutp = partial_product_lut("int4", "pot4u")
    assert select_kernel(lutp, 512, f64) == "pair"
    # 1-2-bit pairs at depth go to popcount; too shallow stays pair
    lut2 = partial_product_lut("int2", "int2u")
    assert select_kernel(lut2, 64, f64) == "popcount"
    assert select_kernel(lut2, 8, f64) in ("pair", "pair-int")
    # no pair table above the footprint policy: single-code kernels
    lut8 = partial_product_lut("int8", "int8u")
    assert pair_product_lut("int8", "int8u") is None
    assert select_kernel(lut8, 512, f64) == "gather"
    assert select_kernel(lut8, 2 * lut8.table.size, f64) == "bincount"
    # uncertified wide PoT tables keep the order-preserving gather
    lutpot = partial_product_lut("pot8", "int8u")
    assert lutpot.exact_exp is None
    assert select_kernel(lutpot, 1000, f64) == "gather"


def test_backend_rejects_infeasible_forced_modes():
    """Forcing a kernel that is infeasible or would break the float64
    bit-exact bar fails at compile time, not mid-forward."""
    lut8 = partial_product_lut("int8", "int8u")
    with pytest.raises(ValueError, match="footprint"):
        QGemmBackend(mode="pair")._layer_kernel(lut8, np.float64, 512)
    lutp = partial_product_lut("int4", "pot4u")
    with pytest.raises(ValueError, match="int32 accumulation"):
        QGemmBackend(mode="pair-int")._layer_kernel(lutp, np.float64, 512)
    lutpot = partial_product_lut("pot8", "int8u")
    with pytest.raises(ValueError, match="certified"):
        QGemmBackend(mode="popcount")._layer_kernel(lutpot, np.float64, 512)
    # float32 serving has no exactness bar: the same forcing compiles
    assert (
        QGemmBackend(mode="popcount")._layer_kernel(lutpot, np.float32, 512)
        == "popcount"
    )


def test_qgemm_check_env_flag(monkeypatch):
    """Hot-path operand validation is off by default and re-enabled by
    REPRO_QGEMM_CHECK=1 (public code_gemm calls always validate)."""
    monkeypatch.delenv("REPRO_QGEMM_CHECK", raising=False)
    assert not QGemmBackend()._check
    monkeypatch.setenv("REPRO_QGEMM_CHECK", "1")
    assert QGemmBackend()._check
    monkeypatch.setenv("REPRO_QGEMM_CHECK", "0")
    assert not QGemmBackend()._check


# ----------------------------------------------------------------------
# Code-domain im2col
# ----------------------------------------------------------------------
def test_im2col_codes_matches_value_domain():
    """Gathering grid values after code-im2col equals padding the value
    tensor with exact zeros and windowing it -- both layouts."""
    codec = get_type("int4u").codec
    grid_pad = np.concatenate([codec.grid, [0.0]])
    idx = RNG.integers(0, codec.grid.size, size=(2, 5, 6, 3))  # NHWC
    rows = im2col_codes_nhwc(idx, (3, 3), (2, 2), (1, 1), pad_col=codec.grid.size)
    vals = grid_pad[idx]
    padded = np.pad(vals, ((0, 0), (1, 1), (1, 1), (0, 0)))
    win = np.lib.stride_tricks.sliding_window_view(padded, (3, 3), axis=(1, 2))
    win = win[:, ::2, ::2]  # (n, oh, ow, c, kh, kw)
    ref = win.transpose(0, 1, 2, 4, 5, 3).reshape(rows.shape[0], -1)
    assert np.array_equal(grid_pad[rows], ref)

    idx_nchw = np.ascontiguousarray(idx.transpose(0, 3, 1, 2))
    rows_nchw = im2col_codes_nchw(
        idx_nchw, (3, 3), (2, 2), (1, 1), pad_col=codec.grid.size
    )
    ref_nchw = win.reshape(rows.shape[0], -1)
    assert np.array_equal(grid_pad[rows_nchw], ref_nchw)


def test_im2col_codes_1x1_fast_path():
    idx = RNG.integers(0, 15, size=(2, 4, 4, 6))
    rows = im2col_codes_nhwc(idx, (1, 1), (2, 2), (0, 0), pad_col=15)
    assert rows.shape == (2 * 2 * 2, 6)
    assert np.array_equal(rows, idx[:, ::2, ::2, :].reshape(-1, 6))


def test_im2col_codes_rejects_collapsed_output():
    idx = RNG.integers(0, 15, size=(1, 2, 2, 1))
    with pytest.raises(ValueError, match="collapsed"):
        im2col_codes_nhwc(idx, (5, 5), (1, 1), (0, 0), pad_col=15)


# ----------------------------------------------------------------------
# End-to-end: the qgemm backend vs the hook-based fake-quant model
# ----------------------------------------------------------------------
def _hook_logits(entry, x):
    with no_grad():
        if entry.dataset.input_kind == "tokens":
            return entry.model(x).data
        return entry.model(Tensor(x)).data


@pytest.mark.parametrize("workload", WORKLOADS)
def test_qgemm_matches_fake_quant_on_zoo(workload):
    """Code-domain float64 execution holds the runtime's 1e-9 parity
    bar on every zoo workload; float32 keeps argmax parity."""
    entry = trained_model(workload)
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:48]
        reference = _hook_logits(entry, x)
        frozen = quantizer.freeze(model_name=workload, backend="qgemm")
        assert frozen.backend == "qgemm"
        out = frozen.predict(x, batch_size=32)
        assert np.abs(out - reference).max() <= 1e-9

        served = frozen.astype(np.float32).predict(x, batch_size=32)
        assert served.dtype == np.float32
        assert np.array_equal(
            np.argmax(served, axis=1), np.argmax(reference, axis=1)
        )
    finally:
        quantizer.remove()


@pytest.mark.parametrize("combination", ["fip-f", "int"])
def test_qgemm_matches_other_combinations(combination):
    """Float-type tensors (fip-f) and int-only selection both execute
    in the code domain at the same parity bar."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, combination, 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:48]
        reference = _hook_logits(entry, x)
        frozen = quantizer.freeze(backend="qgemm")
        assert np.abs(frozen.predict(x) - reference).max() <= 1e-9
    finally:
        quantizer.remove()


def test_qgemm_matches_after_escalation():
    """Mixed-precision int8 layers execute code-domain via the 8-bit
    tables (the fused-PE path in hardware)."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        first = next(iter(quantizer.layers))
        quantizer.escalate_layer(first, bits=8)
        x = entry.dataset.x_test[:48]
        reference = _hook_logits(entry, x)
        frozen = quantizer.freeze(backend="qgemm")
        assert np.abs(frozen.predict(x) - reference).max() <= 1e-9
    finally:
        quantizer.remove()


def test_qgemm_gather_and_bincount_modes_agree_end_to_end():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze()
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:16]
    gather = frozen.set_backend("qgemm", mode="gather").predict(x)
    auto = frozen.set_backend("qgemm", mode="auto").predict(x)
    assert np.array_equal(gather, auto)


def test_qgemm_checkpoint_and_backend_switching(tmp_path):
    """load(backend="qgemm") serves identically to an in-memory engine
    switched to qgemm; switching back to float restores the float path
    bit-for-bit."""
    entry = trained_model("resnet18")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="resnet18")
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:24]
    float_out = frozen.predict(x)
    qgemm_out = frozen.set_backend("qgemm").predict(x)
    path = tmp_path / "r18.npz"
    frozen.save(path)
    loaded = FrozenModel.load(path, backend="qgemm")
    assert loaded.backend == "qgemm"
    assert np.array_equal(loaded.predict(x), qgemm_out)
    assert np.array_equal(frozen.set_backend("float").predict(x), float_out)


def test_qgemm_weight_only_falls_back_to_float():
    """Weight-only exports have no activation codes; the backend keeps
    those layers on the float kernels instead of refusing the model."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(weight_only=True)
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:16]
    reference = frozen.predict(x)
    out = frozen.set_backend("qgemm").predict(x)
    assert np.array_equal(out, reference)  # same float kernels ran


def test_qgemm_rejects_nan_activations():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(backend="qgemm")
    finally:
        quantizer.remove()
    x = np.array(entry.dataset.x_test[:2], copy=True)
    x[0, 0, 0, 0] = np.nan
    with pytest.raises(ValueError, match="NaN"):
        frozen.predict(x)


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown execution backend"):
        get_backend("blas-on-mars")
    with pytest.raises(ValueError, match="unknown qgemm mode"):
        QGemmBackend(mode="nope")


# ----------------------------------------------------------------------
# Cost meter and the hardware-model bridge
# ----------------------------------------------------------------------
def test_cost_meter_counts_executed_work():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    meter = CostMeter()
    frozen.set_backend(QGemmBackend(meter=meter))
    x = entry.dataset.x_test[:8]
    frozen.predict(x, batch_size=8)
    assert set(meter.layers) == set(frozen.exports)
    for name, cost in meter.layers.items():
        export = frozen.exports[name]
        lut = partial_product_lut(export.weight.dtype_name, export.act_dtype_name)
        # the meter records the kernel the compile-time rule selects
        assert cost.kernel == select_kernel(lut, cost.k, np.float64)
        assert cost.calls == 1
        assert cost.code_macs == cost.rows * cost.k * cost.m
        assert cost.weight_traffic_bytes == export.weight.packed_nbytes
        assert cost.weight_bits == export.weight.bits
        # activation codes travel at their true bit width
        assert cost.act_traffic_bytes == (cost.rows * cost.k * cost.act_bits + 7) // 8
        # table touches are accounted for the kernel that actually ran
        if cost.kernel == "gather":
            assert cost.lut_lookups == cost.code_macs
            assert cost.lut_table_bytes == lut.table.size * 8
        elif cost.kernel == "bincount":
            assert cost.lut_lookups == cost.rows * cost.m * lut.table.size
        elif cost.kernel in ("pair", "pair-int"):
            # one pair-table lookup retires two MACs (+ the odd tail)
            assert cost.lut_lookups == cost.rows * cost.m * ((cost.k + 1) // 2)
            pair = pair_product_lut(export.weight.dtype_name, export.act_dtype_name)
            itemsize = 2 if cost.kernel == "pair-int" else 8
            assert cost.lut_table_bytes == pair.table.size * itemsize
        else:  # popcount: work lives in word ops, not table gathers
            assert cost.lut_lookups == 0
            assert cost.word_ops > 0
        # unique activation footprint: exact for linear, strictly less
        # than the im2col-replicated GEMM operand for spatial convs
        if cost.kind == "linear":
            assert cost.input_elems == cost.rows * cost.k
        else:
            assert 0 < cost.input_elems <= cost.rows * cost.k
    # the 4-bit zoo pairs all certify int16/int32 pair accumulation at
    # these depths -- every layer runs the pair-int kernel
    assert {c.kernel for c in meter.layers.values()} == {"pair-int"}
    # the classifier linear's GEMM shape is exact: 8 rows x 512 x 64
    fc = next(c for c in meter.layers.values() if c.kind == "linear" and c.k == 512)
    assert (fc.rows, fc.m) == (8, 64) and fc.code_macs == 8 * 512 * 64
    # a second forward accumulates
    before = meter.total("code_macs")
    frozen.predict(x, batch_size=8)
    assert meter.total("code_macs") == 2 * before
    meter.reset()
    assert not meter.layers


def test_hardware_bridge_runs_executed_workload():
    entry = trained_model("resnet18")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        first = next(iter(quantizer.layers))
        quantizer.escalate_layer(first, bits=8)
        frozen = quantizer.freeze()
    finally:
        quantizer.remove()
    meter = CostMeter()
    frozen.set_backend(QGemmBackend(meter=meter))
    frozen.predict(entry.dataset.x_test[:8], batch_size=8)

    shapes, assigns = executed_assignment(meter)
    assert len(shapes) == len(assigns) == len(meter.layers)
    # hardware-model MACs equal the counted code MACs exactly
    assert sum(s.macs for s in shapes) == meter.total("code_macs")
    # the escalated layer's true bits flow through
    escalated = dict(zip([s.name for s in shapes], assigns))[first]
    assert escalated.weight_bits == 8 and escalated.act_bits == 8
    assert {a.weight_bits for a in assigns} == {4, 8}

    sim = simulate_executed(meter, "ant-os")
    assert sim.cycles > 0 and sim.total_energy_pj > 0
    assert len(sim.per_layer) == len(meter.layers)
    tc = simulate_executed_tensorcore(meter)
    assert tc.seconds > 0
    assert tc.math_bound_layers + tc.memory_bound_layers == len(meter.layers)


def test_simulate_executed_calibrated_against_analytic_tables():
    """A meter loaded with the Fig. 13 analytic layer shapes reproduces
    the analytic simulation *exactly*: the executed bridge and the
    hand-written tables agree on every LayerShape field -- in
    particular ``input_elems`` means the unique feature-map footprint
    on both sides, not the im2col-expanded GEMM operand."""
    from repro.hardware.accelerator import LayerAssignment, build_accelerator
    from repro.hardware.workloads import workload_layers
    from repro.qgemm import LayerCost

    analytic = [
        s
        for s in workload_layers("vit", batch=2)
        if s.weight_elems == s.m * s.k  # weight-less attn GEMMs never meter
    ]
    assert analytic  # the filter must keep the projection/MLP layers
    meter = CostMeter()
    for s in analytic:
        meter.layers[s.name] = LayerCost(
            name=s.name, kind="linear", w_dtype="int4", a_dtype="int4u",
            weight_bits=4, act_bits=4, m=s.m, k=s.k, rows=s.n,
            input_elems=s.input_elems, output_elems=s.output_elems,
        )
    shapes, assigns = executed_assignment(meter)
    assert [
        (sh.m, sh.k, sh.n, sh.weight_elems, sh.input_elems, sh.output_elems)
        for sh in shapes
    ] == [
        (s.m, s.k, s.n, s.weight_elems, s.input_elems, s.output_elems)
        for s in analytic
    ]
    ref = build_accelerator("ant-os").simulate(
        analytic, [LayerAssignment(4, 4)] * len(analytic)
    )
    sim = simulate_executed(meter, "ant-os")
    assert sim.cycles == ref.cycles
    assert sim.total_energy_pj == ref.total_energy_pj


def test_hardware_bridge_rejects_empty_meter():
    with pytest.raises(ValueError, match="empty"):
        simulate_executed(CostMeter())
    with pytest.raises(ValueError, match="empty"):
        simulate_executed_tensorcore(CostMeter())
