"""Tests for synthetic datasets and distribution samplers."""

import numpy as np
import pytest

from repro.data import (
    DISTRIBUTIONS,
    dataset_for_workload,
    iterate_batches,
    make_image_classification,
    make_token_classification,
    make_tensor_suite,
    sample_distribution,
)
from repro.nn.models import IMAGE_SHAPE, SEQ_LEN, VOCAB_SIZE


class TestDistributions:
    def test_all_families_sample(self):
        suite = make_tensor_suite(n=512, seed=0)
        assert set(suite) == set(DISTRIBUTIONS)
        for name, x in suite.items():
            assert x.shape == (512,)

    def test_deterministic(self):
        a = sample_distribution("gaussian", 100, seed=5)
        b = sample_distribution("gaussian", 100, seed=5)
        assert np.array_equal(a, b)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            sample_distribution("cauchy", 10)

    def test_positive_families_nonnegative(self):
        for name in ["uniform_positive", "half_gaussian", "half_laplace"]:
            assert np.all(sample_distribution(name, 1000, seed=1) >= 0)

    def test_outlier_family_has_outliers(self):
        x = sample_distribution("gaussian_outliers", 4000, seed=2)
        assert np.max(np.abs(x)) > 6.0  # well beyond a plain Gaussian


class TestImageTask:
    def test_shapes_and_ranges(self):
        ds = make_image_classification(n_train=64, n_test=32, seed=0)
        assert ds.x_train.shape == (64,) + IMAGE_SHAPE
        assert ds.input_kind == "image"
        assert ds.y_train.min() >= 0 and ds.y_train.max() < ds.num_classes

    def test_gain_widens_dynamic_range(self):
        flat = make_image_classification(n_train=256, n_test=8, gain_sigma=0.0, seed=0)
        wide = make_image_classification(n_train=256, n_test=8, gain_sigma=1.3, seed=0)
        assert wide.x_train.max() > flat.x_train.max() * 2

    def test_deterministic(self):
        a = make_image_classification(n_train=16, n_test=8, seed=9)
        b = make_image_classification(n_train=16, n_test=8, seed=9)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)


class TestTokenTask:
    def test_shapes(self):
        ds = make_token_classification(n_train=64, n_test=32, seed=0)
        assert ds.x_train.shape == (64, SEQ_LEN)
        assert ds.x_train.max() < VOCAB_SIZE
        assert ds.input_kind == "tokens"

    def test_triggers_present(self):
        ds = make_token_classification(num_classes=3, n_train=100, n_test=10, seed=1)
        for row, label in zip(ds.x_train, ds.y_train):
            assert np.sum(row == label + 1) >= 2

    def test_zipf_skews_filler_frequencies(self):
        ds = make_token_classification(n_train=400, n_test=10, zipf=1.5, seed=0)
        fillers = ds.x_train[ds.x_train > 3]
        counts = np.bincount(fillers, minlength=VOCAB_SIZE)[4:]
        assert counts[0] > 10 * max(counts[-1], 1)


class TestWorkloadDatasets:
    def test_every_workload_has_a_dataset(self):
        from repro.nn.models import WORKLOADS

        for name in WORKLOADS:
            ds = dataset_for_workload(name, n_train=16, n_test=8)
            assert ds.n_train == 16

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            dataset_for_workload("mystery-net")

    def test_iterate_batches_covers_everything(self):
        x = np.arange(10)
        y = np.arange(10)
        seen = []
        for bx, _ in iterate_batches(x, y, batch_size=3, shuffle=True, seed=0):
            seen.extend(bx.tolist())
        assert sorted(seen) == list(range(10))

    def test_iterate_batches_aligned(self):
        x = np.arange(20)
        y = x * 10
        for bx, by in iterate_batches(x, y, batch_size=7, seed=1):
            assert np.array_equal(by, bx * 10)
