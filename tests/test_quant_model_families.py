"""ModelQuantizer coverage across all architecture families.

The framework must handle conv layers (per-channel 4-D weights),
attention projections, embeddings feeding transformers, and the
token-input path -- each family exercises a different capture/apply
code path.
"""

import numpy as np
import pytest

from repro.data import dataset_for_workload
from repro.nn.models import WORKLOADS, build_model
from repro.quant import ModelQuantizer
from repro.quant.framework import evaluate, quantizable_layers

RNG = np.random.default_rng(8)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_calibrate_apply_every_family(workload):
    model = build_model(workload)
    ds = dataset_for_workload(workload, n_train=32, n_test=16)
    quantizer = ModelQuantizer(model, "ip-f", 4)
    quantizer.calibrate(ds.x_train[:16]).apply()
    # quantized forward still produces valid logits
    accuracy = evaluate(model, ds.x_test, ds.y_test)
    assert 0.0 <= accuracy <= 1.0
    # every quantizable layer got both quantizers
    assert set(quantizer.layers) == set(quantizable_layers(model))
    for config in quantizer.layers.values():
        assert config.weight_quantizer.is_calibrated
        assert config.input_quantizer.is_calibrated
    quantizer.remove()


def test_conv_weights_per_channel_axis_zero():
    model = build_model("resnet18")
    ds = dataset_for_workload("resnet18", n_train=16, n_test=8)
    quantizer = ModelQuantizer(model, "ip-f", 4).calibrate(ds.x_train)
    for config in quantizer.layers.values():
        weight = config.module.weight.data
        assert config.weight_quantizer.scales.shape == (weight.shape[0],)


def test_transformer_attention_projections_quantized():
    model = build_model("bert-mnli")
    ds = dataset_for_workload("bert-mnli", n_train=16, n_test=8)
    quantizer = ModelQuantizer(model, "ip-f", 4).calibrate(ds.x_train)
    names = set(quantizer.layers)
    for expected in ("q_proj", "k_proj", "v_proj", "out_proj", "fc1", "fc2"):
        assert any(expected in name for name in names)


def test_signed_activation_paths():
    """Transformer layer inputs (post-LN) are signed; post-ReLU unsigned."""
    bert = build_model("bert-mnli")
    ds = dataset_for_workload("bert-mnli", n_train=16, n_test=8)
    quantizer = ModelQuantizer(bert, "ip-f", 4).calibrate(ds.x_train)
    qkv = next(cfg for name, cfg in quantizer.layers.items() if "q_proj" in name)
    assert qkv.input_quantizer.dtype.signed is True

    vgg = build_model("vgg16")
    ds_img = dataset_for_workload("vgg16", n_train=16, n_test=8)
    quantizer_vgg = ModelQuantizer(vgg, "ip-f", 4).calibrate(ds_img.x_train)
    # the second conv's input is post-ReLU -> unsigned
    configs = list(quantizer_vgg.layers.values())
    assert configs[1].input_quantizer.dtype.signed is False


def test_six_bit_candidates():
    """The framework generalises beyond 4 bits (Table V uses 6)."""
    model = build_model("vgg16")
    ds = dataset_for_workload("vgg16", n_train=16, n_test=8)
    quantizer = ModelQuantizer(model, "ip-f", bits=6).calibrate(ds.x_train)
    for config in quantizer.layers.values():
        assert config.weight_quantizer.bits == 6
