"""Tests for layer modules, the module system and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Tensor,
)
from repro.nn.attention import (
    MultiHeadSelfAttention,
    PostLNEncoderBlock,
    TransformerEncoderBlock,
    sinusoidal_positions,
)
from repro.nn.autograd import cross_entropy

RNG = np.random.default_rng(2)


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "m0.weight" in names and "m2.bias" in names
        assert len(model.parameters()) == 4

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        state = model.state_dict()
        fresh = Sequential(Linear(3, 4), Linear(4, 2))
        fresh.load_state_dict(state)
        for (_, p1), (_, p2) in zip(model.named_parameters(), fresh.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_includes_bn_buffers(self):
        bn = BatchNorm2d(3)
        bn(Tensor(RNG.normal(size=(4, 3, 2, 2))))
        state = bn.state_dict()
        assert any("running_mean" in key for key in state)

    def test_load_state_dict_shape_mismatch(self):
        model = Linear(3, 4)
        bad = {name: np.zeros((1, 1)) for name, _ in model.named_parameters()}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_load_state_dict_missing_key(self):
        with pytest.raises(KeyError):
            Linear(3, 4).load_state_dict({})

    def test_zero_grad(self):
        layer = Linear(2, 2)
        layer(Tensor(RNG.normal(size=(3, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        out = Linear(5, 7)(Tensor(RNG.normal(size=(4, 5))))
        assert out.shape == (4, 7)

    def test_conv_shapes(self):
        out = Conv2d(3, 8, 3, stride=2, padding=1)(Tensor(RNG.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)) * 5)
        assert np.allclose(GlobalAvgPool2d()(x).data, 5.0)

    def test_max_pool_layer(self):
        out = MaxPool2d(2)(Tensor(RNG.normal(size=(1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_layernorm_layer(self):
        out = LayerNorm(8)(Tensor(RNG.normal(size=(2, 5, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)

    def test_embedding(self):
        emb = Embedding(10, 6)
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 6)

    def test_quant_hooks_invoked(self):
        layer = Linear(3, 3)
        calls = []

        def hook(t):
            calls.append(t.data.shape)
            return t

        object.__setattr__(layer, "input_fake_quant", hook)
        object.__setattr__(layer, "weight_fake_quant", hook)
        layer(Tensor(RNG.normal(size=(2, 3))))
        assert calls == [(2, 3), (3, 3)]


class TestAttention:
    def test_mhsa_shape(self):
        attn = MultiHeadSelfAttention(16, 4)
        out = attn(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_mhsa_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_pre_ln_block(self):
        block = TransformerEncoderBlock(16, 4)
        out = block(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_post_ln_block_output_normalized(self):
        block = PostLNEncoderBlock(16, 4)
        out = block(Tensor(RNG.normal(size=(2, 5, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-8)

    def test_attention_gradients_flow(self):
        block = TransformerEncoderBlock(8, 2)
        out = block(Tensor(RNG.normal(size=(2, 4, 8)), requires_grad=True))
        out.sum().backward()
        for _, param in block.named_parameters():
            assert param.grad is not None

    def test_sinusoidal_positions(self):
        enc = sinusoidal_positions(10, 8)
        assert enc.shape == (10, 8)
        assert np.all(np.abs(enc) <= 1.0)


class TestOptimizers:
    def _quadratic_setup(self):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        return target, param

    def test_sgd_converges(self):
        target, param = self._quadratic_setup()
        opt = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        target, param = self._quadratic_setup()
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert param.data[0] < 10.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1)

    def test_skips_params_without_grad(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([a, b], lr=0.1)
        (a * 2.0).sum().backward()
        opt.step()  # b.grad is None; must not crash
        assert b.data[0] == 0.0


class TestModels:
    @pytest.mark.parametrize("name", ["vgg16", "resnet18", "inceptionv3", "vit"])
    def test_image_models_forward(self, name):
        from repro.nn.models import build_model

        model = build_model(name)
        out = model(Tensor(RNG.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_bert_forward(self):
        from repro.nn.models import build_model

        model = build_model("bert-mnli")
        out = model(RNG.integers(0, 64, size=(2, 16)))
        assert out.shape == (2, 3)

    def test_unknown_workload(self):
        from repro.nn.models import build_model

        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_deterministic_init(self):
        from repro.nn.models import build_model

        m1, m2 = build_model("vgg16", seed=3), build_model("vgg16", seed=3)
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_models_learn(self):
        """A few Adam steps reduce the loss on a fixed batch."""
        from repro.nn.models import build_model

        model = build_model("vgg16")
        x = Tensor(RNG.normal(size=(16, 3, 16, 16)))
        y = RNG.integers(0, 10, size=16)
        opt = Adam(model.parameters(), lr=1e-3)
        first = None
        for _ in range(10):
            opt.zero_grad()
            loss = cross_entropy(model(x), y)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first
