"""Frozen inference runtime: packing, freezing, checkpoints, serving.

The load-bearing guarantees:

* ``pack_codes`` -> ``unpack_codes`` round-trips bit-exactly for every
  registered type at bits 3..8 and for odd element counts (the trailing
  byte carries padding);
* a ``freeze()``-ed model reproduces the hook-based fake-quant model to
  <= 1e-9 on every zoo workload (float64 engine), and to argmax parity
  in the float32 serving mode;
* packed checkpoints store low-bit payloads whose size matches
  ``bits * elements / 8`` and round-trip through ``save``/``load``;
* the float32 fast index kernels agree exactly with the float32
  searchsorted reference for finite inputs.
"""

import numpy as np
import pytest

from repro.dtypes import get_type, pack_codes, packed_nbytes, unpack_codes
from repro.nn import Linear, ReLU, Sequential
from repro.nn.autograd import Tensor, no_grad
from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel, freeze_model
from repro.runtime.engine import _fast_index_for
from repro.zoo import calibration_batch, trained_model

RNG = np.random.default_rng(0)

ALL_NAMES = [
    f"{kind}{bits}{suffix}"
    for kind in ("int", "pot", "flint", "float")
    for bits in range(3, 9)
    for suffix in ("", "u")
]

WORKLOADS = [
    "vgg16",
    "resnet18",
    "resnet50",
    "inceptionv3",
    "vit",
    "bert-mnli",
    "bert-cola",
    "bert-sst2",
]


# ----------------------------------------------------------------------
# pack_codes / unpack_codes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bits", range(1, 17))
@pytest.mark.parametrize("count", [0, 1, 3, 7, 8, 9, 255, 1000, 4097])
def test_pack_roundtrip_bit_exact(bits, count):
    codes = RNG.integers(0, 1 << bits, size=count)
    packed = pack_codes(codes, bits)
    assert packed.dtype == np.uint8
    assert packed.size == packed_nbytes(count, bits) == (count * bits + 7) // 8
    assert np.array_equal(unpack_codes(packed, bits, count), codes)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_pack_roundtrip_through_type_codes(name):
    """Quantize -> encode -> pack -> unpack -> decode reproduces quantize."""
    dtype = get_type(name)
    x = RNG.normal(size=1001) * 3.0  # odd count on purpose
    if not dtype.signed:
        x = np.abs(x)
    scale = 0.37
    codes = dtype.quantize_to_codes(x, scale)
    unpacked = unpack_codes(pack_codes(codes, dtype.bits), dtype.bits, x.size)
    assert np.array_equal(unpacked, codes)
    assert np.array_equal(dtype.decode(unpacked) * scale, dtype.quantize(x, scale))


@pytest.mark.parametrize("bits", range(1, 17))
def test_pack_zero_length_every_width(bits):
    """Empty tensors pack to empty byte streams and round-trip, at
    every supported width (a 0-element layer export must not crash)."""
    empty = np.array([], dtype=np.int64)
    packed = pack_codes(empty, bits)
    assert packed.shape == (0,) and packed.dtype == np.uint8
    assert packed_nbytes(0, bits) == 0
    out = unpack_codes(packed, bits, 0)
    assert out.shape == (0,) and out.dtype.kind in "iu"


def test_pack_width1_bit_layout():
    """Width 1 is pure bit-packing: element k lands at bit k, LSB first."""
    codes = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1])
    packed = pack_codes(codes, 1)
    assert np.array_equal(packed, [0b10001101, 0b00000001])
    assert np.array_equal(unpack_codes(packed, 1, 9), codes)
    # all-ones / all-zeros extremes
    assert np.array_equal(pack_codes(np.ones(8, dtype=int), 1), [0xFF])
    assert np.array_equal(pack_codes(np.zeros(8, dtype=int), 1), [0x00])


def test_pack_width16_boundary_values():
    """Width 16 (MAX_PACK_BITS) holds the full code range, little-endian
    within the stream; 17 bits is rejected."""
    codes = np.array([0xFFFF, 0x0001, 0x8000, 0])
    packed = pack_codes(codes, 16)
    assert np.array_equal(packed, [0xFF, 0xFF, 0x01, 0x00, 0x00, 0x80, 0, 0])
    assert np.array_equal(unpack_codes(packed, 16, 4), codes)
    with pytest.raises(ValueError):
        pack_codes(np.array([1 << 16]), 16)  # out of range at max width
    with pytest.raises(ValueError):
        pack_codes(codes, 17)
    with pytest.raises(ValueError):
        unpack_codes(packed, 17, 4)


def test_pack_accepts_any_integer_layout():
    """Multi-dim, non-contiguous, and narrow/unsigned dtypes all pack
    to the same canonical stream as their flattened int64 copy."""
    codes = (np.arange(60, dtype=np.uint16).reshape(3, 20)[:, ::2]) % 8
    canonical = pack_codes(codes.ravel().astype(np.int64), 3)
    assert np.array_equal(pack_codes(codes, 3), canonical)
    assert np.array_equal(unpack_codes(canonical, 3, codes.size), codes.ravel())


def test_unpack_ignores_trailing_padding_bits():
    """Only the declared count*bits bits are data: garbage in the
    trailing byte's padding must not leak into decoded codes."""
    codes = np.array([5, 2, 7])  # 9 bits -> 2 bytes, 7 padding bits
    packed = pack_codes(codes, 3).copy()
    packed[-1] |= 0b11111110  # corrupt every padding bit
    assert np.array_equal(unpack_codes(packed, 3, 3), codes)


def test_pack_rejects_bad_input():
    with pytest.raises(ValueError):
        pack_codes(np.array([16]), 4)  # out of range
    with pytest.raises(ValueError):
        pack_codes(np.array([-1]), 4)
    with pytest.raises(TypeError):
        pack_codes(np.array([1.5]), 4)
    with pytest.raises(ValueError):
        pack_codes(np.array([1]), 0)
    with pytest.raises(ValueError):
        unpack_codes(np.zeros(3, dtype=np.uint8), 4, 100)  # wrong byte count


# ----------------------------------------------------------------------
# float32 fast index kernels == searchsorted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_NAMES)
def test_fast_index_matches_searchsorted(name):
    fast = _fast_index_for(name)
    codec = get_type(name).codec
    with np.errstate(over="ignore"):
        mid32 = codec.midpoints.astype(np.float32)
    if fast is None:
        # only grids beyond float32 range may fall back
        assert not np.all(np.isfinite(mid32)) or not np.all(np.diff(mid32) > 0)
        return
    probes = np.concatenate([
        RNG.normal(size=4096) * 3.0,
        RNG.normal(size=4096) * 1e-3,
        codec.grid,
        codec.midpoints,
        np.nextafter(mid32, np.float32(-np.inf)).astype(np.float64),
        np.nextafter(mid32, np.float32(np.inf)).astype(np.float64),
        [0.0, -0.0, 1e30, -1e30, np.inf, -np.inf, 1e-40, -1e-40],
    ]).astype(np.float32)
    ref = np.searchsorted(mid32, probes, side="right")
    assert np.array_equal(fast(probes).copy(), ref)


# ----------------------------------------------------------------------
# Freezing: equivalence with the hook-based fake-quant model
# ----------------------------------------------------------------------
def _hook_logits(entry, x):
    with no_grad():
        if entry.dataset.input_kind == "tokens":
            return entry.model(x).data
        return entry.model(Tensor(x)).data


@pytest.mark.parametrize("workload", WORKLOADS)
def test_frozen_matches_fake_quant_on_zoo(workload):
    entry = trained_model(workload)
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:96]
        reference = _hook_logits(entry, x)

        frozen = quantizer.freeze(model_name=workload)
        out = frozen.predict(x, batch_size=64)
        assert np.abs(out - reference).max() <= 1e-9

        served = frozen.astype(np.float32).predict(x, batch_size=64)
        assert served.dtype == np.float32
        assert np.array_equal(
            np.argmax(served, axis=1), np.argmax(reference, axis=1)
        )
    finally:
        quantizer.remove()


def test_astype_roundtrip_restores_bit_exact_float64():
    """float32 serving then back to float64 must not degrade precision."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze()
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:32]
    before = frozen.predict(x)
    frozen.astype(np.float32).astype(np.float64)
    assert np.array_equal(frozen.predict(x), before)


def test_frozen_matches_with_float_types(tmp_path):
    """The fip-f combination (FloatType tensors) freezes and reloads.

    FloatType names carry the explicit layout (``float4u_e2m2b1``) and
    must survive the name-keyed checkpoint round trip.
    """
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "fip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:48]
        reference = _hook_logits(entry, x)
        frozen = quantizer.freeze(model_name="vgg16")
        assert np.abs(frozen.predict(x) - reference).max() <= 1e-9
        path = tmp_path / "fipf.npz"
        frozen.save(path)
        loaded = FrozenModel.load(path)
        assert np.array_equal(loaded.predict(x), frozen.predict(x))
    finally:
        quantizer.remove()


def test_registry_roundtrips_float_layout_names():
    from repro.dtypes import FloatType

    dtype = FloatType(3, 2, signed=True, bias=-1)
    resolved = get_type(dtype.name)
    assert resolved == dtype and resolved.name == dtype.name


def test_frozen_matches_after_escalation():
    """Mixed-precision int8 layers freeze through the same path."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        first = next(iter(quantizer.layers))
        quantizer.escalate_layer(first, bits=8)
        x = entry.dataset.x_test[:64]
        reference = _hook_logits(entry, x)
        frozen = quantizer.freeze()
        assert np.abs(frozen.predict(x) - reference).max() <= 1e-9
        assert frozen.exports[first].weight.dtype_name == "int8"
    finally:
        quantizer.remove()


def test_freeze_preserves_training_mode():
    """Freezing mid-QAT must not silently flip the model to eval."""
    entry = trained_model("resnet18")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        entry.model.train()
        quantizer.freeze()
        assert all(m.training for m in entry.model.modules())
    finally:
        quantizer.remove()
        entry.model.eval()


def test_freeze_requires_calibration():
    model = Sequential(Linear(8, 4))
    with pytest.raises(RuntimeError):
        ModelQuantizer(model).freeze()


def test_freeze_model_without_exports_is_float_engine():
    """freeze_model with no exports runs the plain float forward."""
    model = Sequential(Linear(16, 8), ReLU(), Linear(8, 4))
    model.eval()
    x = RNG.normal(size=(32, 16))
    with no_grad():
        reference = model(Tensor(x)).data
    frozen = freeze_model(model)
    assert np.abs(frozen.predict(x) - reference).max() <= 1e-12


def test_predict_batching_is_consistent():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze()
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:50]
    whole = frozen.predict(x, batch_size=64)
    split = frozen.predict(x, batch_size=7)
    # BLAS kernel selection varies with the GEMM row count, so batch
    # splits may differ at the reassociation level, never more
    assert np.abs(whole - split).max() <= 1e-9
    labels = frozen.predict_classes(x)
    assert np.array_equal(labels, np.argmax(whole, axis=1))
    with pytest.raises(ValueError):
        frozen.predict(x, batch_size=0)


def test_codec_quantize_accepts_integer_input():
    """Regression: the scale==1.0 alias path must not keep int dtype."""
    codec = get_type("int4").codec
    assert np.array_equal(codec.quantize(np.array([1, 2, -3])), [1.0, 2.0, -3.0])


def test_act_quant_memo_is_bounded():
    """Direct (non-FrozenModel) use must not grow the memo unboundedly."""
    from repro.runtime.engine import FrozenActQuant

    quant = FrozenActQuant("int4", 0.5).astype(np.float32)
    for i in range(2 * FrozenActQuant._MEMO_LIMIT + 5):
        quant(np.full(4, float(i % 17), dtype=np.float32))
    assert len(FrozenActQuant._memo) <= FrozenActQuant._MEMO_LIMIT


def test_frozen_act_quant_propagates_nan():
    from repro.runtime.engine import FrozenActQuant

    quant = FrozenActQuant("int4", 0.5)
    x = np.array([0.2, np.nan, 100.0, -np.inf])
    out = quant(x)
    assert np.isnan(out[1])
    assert out[2] == 7 * 0.5 and out[3] == -7 * 0.5


# ----------------------------------------------------------------------
# Weight-only serving mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["vgg16", "resnet18"])
def test_weight_only_freeze_matches_weight_only_hooks(workload):
    """``freeze(weight_only=True)``: packed low-bit weights, float
    activations.  Float64 must match the hook model with input
    fake-quant detached; float32 keeps argmax parity."""
    entry = trained_model(workload)
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen64 = quantizer.freeze(model_name=workload, weight_only=True)
        frozen32 = quantizer.freeze(
            model_name=workload, weight_only=True, dtype=np.float32
        )
        # reference: hooks with ONLY weight fake-quant
        for config in quantizer.layers.values():
            object.__setattr__(config.module, "input_fake_quant", None)
        x = entry.dataset.x_test[:96]
        reference = _hook_logits(entry, x)
    finally:
        quantizer.remove()
    assert np.abs(frozen64.predict(x) - reference).max() <= 1e-9
    parity = np.mean(
        np.argmax(frozen32.predict(x), axis=1) == np.argmax(reference, axis=1)
    )
    assert parity >= 0.99, (workload, parity)
    assert frozen64.meta["weight_only"] is True
    assert all(e.act_dtype_name is None for e in frozen64.exports.values())


def test_weight_only_checkpoint_roundtrip(tmp_path):
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        weight_only = quantizer.freeze(model_name="vgg16", weight_only=True)
        full = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:32]
    path = tmp_path / "wo.npz"
    weight_only.save(path)
    loaded = FrozenModel.load(path)
    assert np.array_equal(loaded.predict(x), weight_only.predict(x))
    # load-time override strips activation quantizers from a FULL
    # checkpoint and lands on the same weight-only engine
    full_path = tmp_path / "full.npz"
    full.save(full_path)
    stripped = FrozenModel.load(full_path, weight_only=True)
    assert np.array_equal(stripped.predict(x), weight_only.predict(x))
    # and the full engine differs (activation quant actually ran)
    assert not np.array_equal(full.predict(x), weight_only.predict(x))


# ----------------------------------------------------------------------
# Packed checkpoints
# ----------------------------------------------------------------------
def test_packed_sizes_match_report_bits():
    entry = trained_model("resnet18")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze()
        report = quantizer.report()
    finally:
        quantizer.remove()
    for name, config in quantizer.layers.items():
        export = frozen.exports[name]
        bits = config.weight_quantizer.dtype.bits
        n = int(config.module.weight.data.size)
        assert export.weight.packed_nbytes == (n * bits + 7) // 8
    size = frozen.size_report()
    # payload bits per element must equal the report's weight bit width
    weight_bits = [
        row["bits"] for row in report.layers if row["role"] == "weight"
    ]
    assert min(weight_bits) <= size["quantized_weight_bits_per_element"] <= max(weight_bits)
    # and the packed payload is ~bits/64 of the float64 footprint
    expected = size["quantized_weight_bits_per_element"] / 64.0
    actual = size["packed_weight_bytes"] / size["float64_equivalent_bytes"]
    assert abs(actual - expected) < 0.01


def test_checkpoint_roundtrip(tmp_path):
    entry = trained_model("inceptionv3")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="inceptionv3")
    finally:
        quantizer.remove()
    x = entry.dataset.x_test[:48]
    reference = frozen.predict(x)

    path = tmp_path / "ckpt.npz"
    frozen.save(path)
    loaded = FrozenModel.load(path)
    assert np.array_equal(loaded.predict(x), reference)
    assert loaded.model_name == "inceptionv3"
    assert loaded.meta["combination"] == "ip-f"

    # on-disk payload: quantized weights live as packed codes, not floats
    blob = np.load(path)
    for name, export in frozen.exports.items():
        stored = blob[f"wcodes/{name}"]
        assert stored.dtype == np.uint8
        assert stored.size == export.weight.packed_nbytes
        assert f"param/{name}.weight" not in blob.files


def test_checkpoint_meta_cannot_corrupt_reserved_keys(tmp_path):
    model = Sequential(Linear(8, 4))
    model.eval()
    frozen = freeze_model(model, meta={"version": 99, "layers": "bogus"})
    path = tmp_path / "meta.npz"
    frozen.save(path)
    loaded = FrozenModel.load(path, model=Sequential(Linear(8, 4)))
    x = RNG.normal(size=(4, 8))
    assert np.abs(loaded.predict(x) - frozen.predict(x)).max() <= 1e-12


def test_checkpoint_with_explicit_skeleton(tmp_path):
    """load(model=...) works for models outside the zoo registry."""
    from repro.nn import models as M

    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze()  # no model_name recorded
    finally:
        quantizer.remove()
    path = tmp_path / "anon.npz"
    frozen.save(path)
    with pytest.raises(ValueError):
        FrozenModel.load(path)
    loaded = FrozenModel.load(path, model=M.build_model("vgg16"))
    x = entry.dataset.x_test[:32]
    assert np.array_equal(loaded.predict(x), frozen.predict(x))
