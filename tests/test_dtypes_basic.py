"""Tests for int, float and PoT primitive types."""

import numpy as np
import pytest

from repro.dtypes import FloatType, IntType, PoTType, get_type


class TestIntType:
    def test_unsigned_grid(self):
        assert IntType(4, signed=False).grid.tolist() == list(range(16))

    def test_signed_grid_symmetric(self):
        grid = IntType(4, signed=True).grid
        assert grid.tolist() == list(range(-7, 8))

    def test_roundtrip_unsigned(self):
        dtype = IntType(6, signed=False)
        grid = dtype.grid
        assert np.allclose(dtype.decode(dtype.encode(grid)), grid)

    def test_roundtrip_signed_twos_complement(self):
        dtype = IntType(4, signed=True)
        codes = dtype.encode(np.array([-1.0, -7.0, 3.0]))
        assert codes.tolist() == [0b1111, 0b1001, 0b0011]
        assert dtype.decode(codes).tolist() == [-1.0, -7.0, 3.0]

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IntType(4, signed=True).encode(np.array([8.0]))
        with pytest.raises(ValueError):
            IntType(4, signed=False).encode(np.array([16.0]))

    def test_quantize_uniform_rounding(self):
        dtype = IntType(4, signed=False)
        assert dtype.quantize(np.array([3.4, 3.5, 3.6])).tolist() == [3.0, 4.0, 4.0]

    def test_min_bits(self):
        with pytest.raises(ValueError):
            IntType(1, signed=False)


class TestFloatType:
    def test_e2m2_unsigned_grid(self):
        dtype = FloatType(2, 2, signed=False)
        # subnormals 0, .25, .5, .75 then normals
        assert dtype.grid.tolist() == [
            0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75,
            2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0,
        ]

    def test_roundtrip(self):
        dtype = FloatType(3, 2, signed=True)
        grid = dtype.grid
        assert np.allclose(dtype.decode(dtype.encode(grid)), grid)

    def test_bias_shifts_grid(self):
        base = FloatType(2, 1, signed=False, bias=0)
        shifted = base.with_bias(2)
        assert np.allclose(shifted.grid, base.grid / 4.0)

    def test_subnormals_include_zero(self):
        dtype = FloatType(4, 3, signed=False)
        assert dtype.grid[0] == 0.0
        assert dtype.min_positive > 0

    def test_signed_has_sign_bit(self):
        dtype = FloatType(2, 1, signed=True)
        assert dtype.bits == 4
        code = dtype.encode(np.array([-1.5]))[0]
        assert code >> 3 == 1

    def test_pot_equivalence_of_zero_mantissa_float(self):
        """Signed 4-bit float with m=0 and PoT overlap (Fig. 14 note)."""
        fl = FloatType(3, 0, signed=True, bias=0)
        pot = PoTType(4, signed=True, bias=0)
        fl_pos = fl.grid[fl.grid > 0]
        pot_pos = pot.grid[pot.grid > 0]
        # float subnormal-with-no-mantissa collapses to 0, PoT code 0 is 0;
        # both are pure powers of two over their shared range.
        shared = np.intersect1d(fl_pos, pot_pos)
        assert shared.size >= min(fl_pos.size, pot_pos.size) - 1

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            FloatType(0, 3)
        with pytest.raises(ValueError):
            FloatType(2, -1)


class TestPoTType:
    def test_unsigned_grid_is_powers_of_two(self):
        dtype = PoTType(4, signed=False)
        grid = dtype.grid
        assert grid[0] == 0.0
        assert np.allclose(grid[1:], 2.0 ** np.arange(15))

    def test_signed_magnitude_grid(self):
        dtype = PoTType(4, signed=True)
        assert dtype.max_value == 64.0  # 2^(2^3 - 2)
        assert dtype.n_values == 15  # +-7 powers + zero

    def test_roundtrip(self):
        dtype = PoTType(5, signed=True)
        grid = dtype.grid
        assert np.allclose(dtype.decode(dtype.encode(grid)), grid)

    def test_bias(self):
        dtype = PoTType(3, signed=False, bias=-2)
        assert dtype.min_positive == 0.25

    def test_encode_rejects_non_power(self):
        with pytest.raises(ValueError):
            PoTType(4, signed=False).encode(np.array([3.0]))

    def test_huge_dynamic_range(self):
        """PoT's key property: extreme range at fixed bit width."""
        pot = PoTType(4, signed=False)
        int4 = IntType(4, signed=False)
        assert pot.max_value / pot.min_positive > int4.max_value / 1.0


class TestRegistry:
    def test_named_lookup(self):
        assert get_type("flint4").kind == "flint"
        assert get_type("int8u").signed is False
        assert get_type("pot4").bits == 4

    def test_cache_identity(self):
        assert get_type("flint4") is get_type("flint4")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_type("posit8")

    def test_candidate_lists(self):
        from repro.dtypes import candidate_list

        kinds = [t.kind for t in candidate_list("ip-f", 4, signed=True)]
        assert kinds == ["int", "pot", "flint"]
        kinds = [t.kind for t in candidate_list("fip-f", 4, signed=False)]
        assert kinds == ["float", "int", "pot", "flint"]
        with pytest.raises(KeyError):
            candidate_list("bogus", 4)
