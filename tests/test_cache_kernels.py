"""Property tests for the cache-resident kernels (PR 8).

The blocked flash-style attention and transposed-tile softmax must be
*shape-blind*: any positive block sizes -- 1, odd, larger than the
sequence -- and any ragged tail must produce the same values as the
naive reference, because block sizes are derived from a cache budget
the user can retune via ``REPRO_L2_BYTES``.  The single-pass LayerNorm
must hold up where fused-moment formulas classically fail (huge mean,
extreme variance).  And the conservative float64 path must stay on the
reference kernels bit-for-bit -- the blocked kernels reassociate and
are float32-serving-only.
"""

import numpy as np
import pytest

from repro.runtime import kernels as K

RNG = np.random.default_rng(0x5EED)


# ----------------------------------------------------------------------
# references (naive, obviously-correct)
# ----------------------------------------------------------------------
def ref_softmax(x):
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def ref_attention(q, k, v, scale=None):
    scores = q @ k.transpose(0, 2, 1)
    if scale is not None:
        scores = scores * scale
    return ref_softmax(scores) @ v


def ref_attention_heads(q, k, v, num_heads, scale):
    batch, seq, dim = q.shape
    hd = dim // num_heads

    def split(t):
        return t.reshape(batch, seq, num_heads, hd).transpose(0, 2, 1, 3)

    scores = split(q) @ split(k).transpose(0, 1, 3, 2) * scale
    ctx = ref_softmax(scores) @ split(v)
    return ctx.transpose(0, 2, 1, 3).reshape(batch, seq, dim)


# ----------------------------------------------------------------------
# blocked softmax
# ----------------------------------------------------------------------
@pytest.mark.parametrize("block_rows", [1, 3, 7, 64, 10_000])
@pytest.mark.parametrize("shape", [(5, 16), (2, 3, 17), (37, 1), (1, 64)])
def test_blocked_softmax_matches_reference(shape, block_rows):
    """Any block size (1, odd, > rows) and ragged tail is exact."""
    x = RNG.standard_normal(shape).astype(np.float32) * 4
    got = K.softmax_blocked_infer(x, bufs={}, block_rows=block_rows)
    np.testing.assert_allclose(got, ref_softmax(x), rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(got.sum(axis=-1), 1.0, rtol=1e-5)


def test_blocked_softmax_propagates_nan_per_row():
    x = RNG.standard_normal((9, 16)).astype(np.float32)
    x[4, 7] = np.nan
    got = K.softmax_blocked_infer(x, bufs={}, block_rows=3)
    assert np.isnan(got[4]).all()
    clean = np.delete(got, 4, axis=0)
    assert np.isfinite(clean).all()
    # identical rows to the reference kernel's NaN handling
    ref = ref_softmax(x)
    assert np.isnan(ref[4]).all()
    np.testing.assert_allclose(clean, np.delete(ref, 4, axis=0), rtol=1e-5)


def test_softmax_infer_float64_stays_on_reference_path():
    """The conservative dtype must not be rerouted: buffered float64
    softmax is bit-identical to the unbuffered reference computation."""
    x = RNG.standard_normal((512, 16)) * 3  # float64
    buffered = K.softmax_infer(x, bufs={})
    assert np.array_equal(buffered, ref_softmax(x))


def test_softmax_infer_fast_path_engages_only_past_budget():
    """float32 scores that spill the budget dispatch to the blocked
    kernel (same values within reassociation tolerance); resident
    scores keep the in-place multi-pass kernel's exact sequence."""
    spill_rows = K.l2_budget_bytes() // (16 * 4) + 1
    x = RNG.standard_normal((spill_rows, 16)).astype(np.float32)
    np.testing.assert_allclose(
        K.softmax_infer(x, bufs={}), ref_softmax(x), rtol=1e-5, atol=1e-6
    )
    small = x[:64]
    assert np.array_equal(K.softmax_infer(small, bufs={}), ref_softmax(small))


# ----------------------------------------------------------------------
# blocked attention
# ----------------------------------------------------------------------
BLOCKS = [(1, 1, 1), (3, 5, 2), (7, 1, 1), (1000, 1000, 1000), (None, None, None)]


@pytest.mark.parametrize("q_block,k_block,bh_block", BLOCKS)
def test_blocked_attention_matches_reference(q_block, k_block, bh_block):
    """Every block-size regime replays the online-softmax recurrence to
    the same values as full-score attention."""
    B, sq, sk, d = 6, 37, 53, 8
    q = RNG.standard_normal((B, sq, d)).astype(np.float32)
    k = RNG.standard_normal((B, sk, d)).astype(np.float32)
    v = RNG.standard_normal((B, sk, d)).astype(np.float32)
    got = K.attention_blocked_infer(
        q, k, v, scale=0.35, bufs={},
        q_block=q_block, k_block=k_block, bh_block=bh_block,
    )
    np.testing.assert_allclose(
        got, ref_attention(q, k, v, 0.35), rtol=1e-4, atol=1e-5
    )


@pytest.mark.parametrize("shape", [(1, 1, 1, 4), (2, 37, 53, 8), (5, 64, 3, 16)])
def test_blocked_attention_ragged_shapes(shape):
    B, sq, sk, d = shape
    q = RNG.standard_normal((B, sq, d)).astype(np.float32)
    k = RNG.standard_normal((B, sk, d)).astype(np.float32)
    v = RNG.standard_normal((B, sk, d)).astype(np.float32)
    got = K.attention_blocked_infer(q, k, v, bufs={}, q_block=5, k_block=7)
    np.testing.assert_allclose(
        got, ref_attention(q, k, v), rtol=1e-4, atol=1e-5
    )


def test_blocked_attention_prescaled_query_skips_score_multiply():
    """scale=None (caller folded 1/sqrt(d) into q) equals scaling the
    scores explicitly."""
    B, s, d = 3, 29, 8
    q = RNG.standard_normal((B, s, d)).astype(np.float32)
    k = RNG.standard_normal((B, s, d)).astype(np.float32)
    v = RNG.standard_normal((B, s, d)).astype(np.float32)
    scale = 1.0 / np.sqrt(d)
    folded = K.attention_blocked_infer(
        (q * scale).astype(np.float32), k, v, bufs={}, q_block=4, k_block=6
    )
    explicit = K.attention_blocked_infer(
        q, k, v, scale=scale, bufs={}, q_block=4, k_block=6
    )
    np.testing.assert_allclose(folded, explicit, rtol=1e-5, atol=1e-6)


def test_blocked_attention_propagates_nan_per_query():
    """A NaN query poisons only its own output rows -- the online
    rescaling must not leak it across the q axis."""
    B, s, d = 2, 24, 8
    q = RNG.standard_normal((B, s, d)).astype(np.float32)
    k = RNG.standard_normal((B, s, d)).astype(np.float32)
    v = RNG.standard_normal((B, s, d)).astype(np.float32)
    q[1, 5, 3] = np.nan
    got = K.attention_blocked_infer(q, k, v, bufs={}, q_block=4, k_block=7)
    assert np.isnan(got[1, 5]).all()
    mask = np.ones((B, s), dtype=bool)
    mask[1, 5] = False
    assert np.isfinite(got[mask]).all()


def test_attention_heads_matches_strided_interpreter_math():
    """The packed contiguous operands compute the same multi-head
    attention as the strided _split_heads formulation."""
    batch, seq, heads, hd = 3, 19, 4, 8
    dim = heads * hd
    q = RNG.standard_normal((batch, seq, dim)).astype(np.float32)
    k = RNG.standard_normal((batch, seq, dim)).astype(np.float32)
    v = RNG.standard_normal((batch, seq, dim)).astype(np.float32)
    scale = 1.0 / np.sqrt(hd)
    got = K.attention_heads_infer(q, k, v, heads, scale, bufs={})
    np.testing.assert_allclose(
        got, ref_attention_heads(q, k, v, heads, scale), rtol=1e-4, atol=1e-5
    )


# ----------------------------------------------------------------------
# single-pass LayerNorm
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "mean_scale,std_scale",
    [(0.0, 1.0), (1e7, 1e3), (1e7, 1e-3), (-1e6, 1e6), (3.0, 1e-6)],
)
def test_layer_norm_1pass_extreme_scales(mean_scale, std_scale):
    """The fused centered second moment survives huge means and extreme
    variances where the naive E[x^2] - E[x]^2 formula cancels
    catastrophically.  Ground truth is a float64 two-pass; the fused
    float32 kernel must land at least as close to it as the float32
    two-pass kernel does (both share the irreducible error of centering
    a huge mean in float32), never catastrophically worse."""
    rows, dmodel = 64, 48
    x = (
        RNG.standard_normal((rows, dmodel)) * std_scale + mean_scale
    ).astype(np.float32)
    weight = RNG.standard_normal(dmodel).astype(np.float32)
    bias = RNG.standard_normal(dmodel).astype(np.float32)
    eps = 1e-5
    got = K.layer_norm_1pass_infer(x, weight, bias, eps, bufs={})
    truth = K.layer_norm_infer(
        x.astype(np.float64), weight.astype(np.float64),
        bias.astype(np.float64), eps,
    )
    two_pass = K.layer_norm_infer(x, weight, bias, eps)
    err_1pass = np.abs(got - truth).max()
    err_2pass = np.abs(two_pass - truth).max()
    assert err_1pass <= max(2.0 * err_2pass, 1e-4)


def test_layer_norm_1pass_matches_two_pass_3d_and_strided():
    """(batch, seq, d) inputs and non-contiguous views both normalize
    identically to the two-pass kernel."""
    x = RNG.standard_normal((4, 11, 32)).astype(np.float32)
    weight = RNG.standard_normal(32).astype(np.float32)
    bias = RNG.standard_normal(32).astype(np.float32)
    got = K.layer_norm_1pass_infer(x, weight, bias, 1e-5, bufs={})
    ref = K.layer_norm_infer(x, weight, bias, 1e-5)
    np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)
    assert got.shape == x.shape
    strided = np.asfortranarray(x[:, ::2])
    got_s = K.layer_norm_1pass_infer(strided, weight, bias, 1e-5, bufs={})
    np.testing.assert_allclose(
        got_s, K.layer_norm_infer(np.ascontiguousarray(strided), weight,
                                  bias, 1e-5),
        rtol=1e-4, atol=1e-5,
    )


# ----------------------------------------------------------------------
# cache-budget knob
# ----------------------------------------------------------------------
def test_l2_budget_env_override_and_clamp(monkeypatch):
    """``REPRO_L2_BYTES`` retunes every tiled kernel (read once per
    process, cached); values below 64 KiB clamp, garbage falls back."""
    saved = K._L2_BYTES_CACHE
    try:
        K._L2_BYTES_CACHE = None
        monkeypatch.setenv("REPRO_L2_BYTES", str(8 << 20))
        assert K.l2_budget_bytes() == 8 << 20
        assert K.conv_tile_elems() == (8 << 20) // 8

        K._L2_BYTES_CACHE = None
        monkeypatch.setenv("REPRO_L2_BYTES", "123")  # below the clamp
        assert K.l2_budget_bytes() == 64 << 10

        K._L2_BYTES_CACHE = None
        monkeypatch.setenv("REPRO_L2_BYTES", "not-a-number")
        assert K.l2_budget_bytes() == K._DEFAULT_L2_BYTES

        # cached: a later env change is ignored until process restart
        monkeypatch.setenv("REPRO_L2_BYTES", str(32 << 20))
        assert K.l2_budget_bytes() == K._DEFAULT_L2_BYTES
    finally:
        K._L2_BYTES_CACHE = saved


def test_blocked_attention_correct_under_tiny_budget(monkeypatch):
    """A clamped-minimum budget produces degenerate block sizes; the
    kernel must still be exact."""
    saved = K._L2_BYTES_CACHE
    try:
        K._L2_BYTES_CACHE = 64 << 10
        B, s, d = 4, 61, 16
        q = RNG.standard_normal((B, s, d)).astype(np.float32)
        k = RNG.standard_normal((B, s, d)).astype(np.float32)
        v = RNG.standard_normal((B, s, d)).astype(np.float32)
        got = K.attention_blocked_infer(q, k, v, scale=0.25, bufs={})
        np.testing.assert_allclose(
            got, ref_attention(q, k, v, 0.25), rtol=1e-4, atol=1e-5
        )
    finally:
        K._L2_BYTES_CACHE = saved
