"""Tests for the ISA extension (Sec. VI-B) and tensor-core model."""

import pytest

from repro.hardware.accelerator import uniform_assignment
from repro.hardware.isa import (
    ANT_EXTENSION_TYPES,
    BASELINE_TYPES,
    Instruction,
    Opcode,
    OperandType,
    assemble_layer,
    assemble_model,
    memory_instructions_identical,
    operand_type_for,
)
from repro.hardware.tensorcore import TensorCoreSpec, simulate_tensorcore
from repro.hardware.workloads import workload_layers


class TestInstructionEncoding:
    def test_load_store_have_no_type_field(self):
        load = Instruction(
            Opcode.LOAD, operand=42,
            weight_type=OperandType.FLINT4, input_type=OperandType.POT4,
        )
        plain = Instruction(Opcode.LOAD, operand=42)
        assert load.encode() == plain.encode()

    def test_matmul_type_field_encoded(self):
        a = Instruction(Opcode.MATMUL, 0, OperandType.INT4, OperandType.INT4)
        b = Instruction(Opcode.MATMUL, 0, OperandType.FLINT4, OperandType.INT4)
        assert a.encode() != b.encode()
        assert (b.encode() >> 24) & 0xF == OperandType.FLINT4

    def test_operand_width_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, operand=1 << 20).encode()

    def test_extension_detection(self):
        assert Instruction(
            Opcode.MATMUL, 0, OperandType.FLINT4, OperandType.INT4
        ).uses_ant_extension
        assert not Instruction(
            Opcode.MATMUL, 0, OperandType.INT8, OperandType.INT4
        ).uses_ant_extension

    def test_type_sets_disjoint(self):
        assert not BASELINE_TYPES & ANT_EXTENSION_TYPES


class TestAssembler:
    def test_operand_type_lookup(self):
        assert operand_type_for("flint", 4) is OperandType.FLINT4
        assert operand_type_for("int", 8) is OperandType.INT8
        with pytest.raises(KeyError):
            operand_type_for("float", 4)  # int-based ANT drops float

    def test_layer_program_structure(self):
        program = assemble_layer("conv1", "flint", 4, "pot", 4, n_tiles=3)
        opcodes = [inst.opcode for inst in program.instructions]
        assert opcodes == [
            Opcode.LOAD, Opcode.LOAD,
            Opcode.MATMUL, Opcode.MATMUL, Opcode.MATMUL,
            Opcode.ACT, Opcode.STORE,
        ]
        assert program.matmul_types == {(OperandType.FLINT4, OperandType.POT4)}

    def test_memory_instructions_unchanged_by_type(self):
        """The paper's claim: switching a layer to flint/PoT leaves every
        LOAD/STORE word identical to the int baseline."""
        ant = assemble_layer("fc", "flint", 4, "pot", 4, n_tiles=5)
        baseline = assemble_layer("fc", "int", 4, "int", 4, n_tiles=5)
        assert memory_instructions_identical(ant, baseline)

    def test_programs_same_length_across_types(self):
        ant = assemble_layer("fc", "flint", 4, "int", 4, n_tiles=4)
        base = assemble_layer("fc", "int", 8, "int", 8, n_tiles=4)
        assert len(ant.instructions) == len(base.instructions)

    def test_assemble_model(self):
        programs = assemble_model(
            [
                {"name": "conv", "weight_kind": "flint", "weight_bits": 4,
                 "input_kind": "int", "input_bits": 4, "tiles": 2},
                {"name": "fc", "weight_kind": "int", "weight_bits": 8,
                 "input_kind": "int", "input_bits": 8, "tiles": 1},
            ]
        )
        assert [p.layer for p in programs] == ["conv", "fc"]
        assert any(
            inst.uses_ant_extension for inst in programs[0].instructions
        )
        assert not any(
            inst.uses_ant_extension for inst in programs[1].instructions
        )

    def test_rejects_zero_tiles(self):
        with pytest.raises(ValueError):
            assemble_layer("x", "int", 4, "int", 4, n_tiles=0)


class TestTensorCore:
    def test_int4_faster_than_int8(self):
        layers = workload_layers("bert-mnli")
        four = simulate_tensorcore(layers, uniform_assignment(layers, 4, 4))
        eight = simulate_tensorcore(layers, uniform_assignment(layers, 8, 8))
        assert four.seconds < eight.seconds

    def test_speedup_bounded_by_two(self):
        """int4 TOPS is exactly 2x int8 TOPS on the A100 envelope."""
        layers = workload_layers("vgg16")
        four = simulate_tensorcore(layers, uniform_assignment(layers, 4, 4))
        eight = simulate_tensorcore(layers, uniform_assignment(layers, 8, 8))
        assert 1.0 < eight.seconds / four.seconds <= 2.0 + 1e-9

    def test_decode_tax_slows_math(self):
        layers = workload_layers("vgg16")
        assignment = uniform_assignment(layers, 4, 4)
        free = simulate_tensorcore(layers, assignment, TensorCoreSpec())
        taxed = simulate_tensorcore(
            layers, assignment, TensorCoreSpec(ant_decode_tax=0.5)
        )
        assert taxed.seconds >= free.seconds

    def test_bound_classification(self):
        layers = workload_layers("bert-mnli")
        result = simulate_tensorcore(layers, uniform_assignment(layers, 4, 4))
        assert result.math_bound_layers + result.memory_bound_layers == len(layers)

    def test_assignment_length_checked(self):
        layers = workload_layers("vgg16")
        with pytest.raises(ValueError):
            simulate_tensorcore(layers, [])
