"""The fused forward-plan compiler (``"fused"`` execution backend).

The load-bearing guarantees:

* a fused float64 plan is **bit-identical** to the ``"float"`` backend
  (and therefore <= 1e-9 against the hook-based fake-quant model) on
  every zoo workload -- the conservative plan replays the interpreter's
  exact kernels in the interpreter's op order;
* a fused float32 plan keeps argmax parity with the hook reference on
  every zoo workload (the aggressive plan may reassociate values);
* shared-consumer quantize (q/k/v projections, ResNet block entries)
  produces the same logits as the unshared per-layer path;
* ``astype`` recompiles the plan: float64 -> float32 -> float64 returns
  to bit-identical float64 logits;
* escalated (int8) and weight-only exports run through the fused
  backend via per-layer fallback without losing parity;
* ``ServingPool``/``map_predict_stream`` with ``backend="fused"`` are
  bit-identical to the local fused model with ``pad_batches=True``;
* ``FrozenModel.profile()`` attributes wall time to plan ops.
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel
from repro.runtime.backends import backend_names, get_backend
from repro.zoo import calibration_batch, trained_model

WORKLOADS = [
    "vgg16",
    "resnet18",
    "resnet50",
    "inceptionv3",
    "vit",
    "bert-mnli",
    "bert-cola",
    "bert-sst2",
]


def _hook_logits(entry, x):
    with no_grad():
        if entry.dataset.input_kind == "tokens":
            return entry.model(x).data
        return entry.model(Tensor(x)).data


def _frozen_pair(workload, **freeze_kwargs):
    """(entry, reference logits, float-backend frozen, fused frozen)."""
    entry = trained_model(workload)
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:96]
        reference = _hook_logits(entry, x)
        plain = quantizer.freeze(model_name=workload, **freeze_kwargs)
        fused = quantizer.freeze(
            model_name=workload, backend="fused", **freeze_kwargs
        )
    finally:
        quantizer.remove()
    return entry, x, reference, plain, fused


# ----------------------------------------------------------------------
# Parity across the zoo
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
def test_fused_parity_on_zoo(workload):
    """float64 bit-identity vs the float backend (and <= 1e-9 vs the
    hook model); float32 argmax parity vs the hook model."""
    entry, x, reference, plain, fused = _frozen_pair(workload)
    out64_plain = plain.predict(x, batch_size=64)
    out64_fused = fused.predict(x, batch_size=64)
    assert np.array_equal(out64_plain, out64_fused)
    assert np.abs(out64_fused - reference).max() <= 1e-9

    plain.astype(np.float32)
    fused.astype(np.float32)
    out32 = fused.predict(x, batch_size=64)
    assert out32.dtype == np.float32
    assert np.array_equal(np.argmax(out32, axis=1), np.argmax(reference, axis=1))


def test_fused_backend_is_registered():
    assert "fused" in backend_names()
    backend = get_backend("fused")
    assert backend.name == "fused"
    # the plan hook is the contract extension; per-layer hooks stay None
    assert backend.compile_linear(None) is None
    assert backend.compile_conv2d(None) is None


def test_fused_plan_applies_expected_fusions():
    """The compiled vgg16 float32 plan shows the fusion classes: merged
    ReLUs (none survive as standalone ops), folded prescales, and a
    flattened single chain across container boundaries."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        fused = quantizer.freeze(
            model_name="vgg16", backend="fused", dtype=np.float32
        )
    finally:
        quantizer.remove()
    labels = fused._plan.describe()
    assert not any(label == "relu" for label in labels)  # all merged/dropped
    from repro.runtime.plan import _GemmNode

    gemms = [n for n in fused._plan.nodes if isinstance(n, _GemmNode)]
    assert gemms and any(g.prescaled for g in gemms)  # scale folds landed


def test_shared_consumer_quantize_matches_unshared():
    """Plans with shared q/k/v-style quantize edges stay equivalent to
    the float backend, and the sharing is structural (SharedQuantNode
    present in the compiled plan)."""
    entry, x, reference, plain, fused = _frozen_pair("vit")
    from repro.runtime.plan import SharedQuantNode

    shared = [
        n for n in fused._plan.nodes if isinstance(n, SharedQuantNode)
    ]
    assert shared, "vit q/k/v projections should share one quantize edge"
    assert np.array_equal(
        plain.predict(x, batch_size=64), fused.predict(x, batch_size=64)
    )
    plain.astype(np.float32)
    fused.astype(np.float32)
    out32 = fused.predict(x, batch_size=64)
    assert np.array_equal(np.argmax(out32, axis=1), np.argmax(reference, axis=1))


# ----------------------------------------------------------------------
# astype recompilation
# ----------------------------------------------------------------------
def test_astype_rebuilds_plan_and_restores_parity():
    """float64 -> float32 -> float64 must recompile the plan each time
    and land back on bit-identical float64 logits."""
    entry, x, reference, plain, fused = _frozen_pair("resnet18")
    out64 = fused.predict(x, batch_size=64)
    plan64 = fused._plan
    assert plan64 is not None and plan64.dtype == np.float64

    fused.astype(np.float32)
    plan32 = fused._plan
    assert plan32 is not None and plan32 is not plan64
    assert plan32.dtype == np.float32
    out32 = fused.predict(x, batch_size=64)
    assert out32.dtype == np.float32
    assert np.array_equal(np.argmax(out32, axis=1), np.argmax(reference, axis=1))

    fused.astype(np.float64)
    assert fused._plan is not None and fused._plan is not plan32
    assert np.array_equal(fused.predict(x, batch_size=64), out64)
    assert np.abs(fused.predict(x, batch_size=64) - reference).max() <= 1e-9


def test_set_backend_round_trip_drops_plan():
    entry, x, reference, plain, fused = _frozen_pair("vgg16")
    assert fused._plan is not None
    fused.set_backend("float")
    assert fused._plan is None
    assert np.array_equal(
        fused.predict(x, batch_size=64), plain.predict(x, batch_size=64)
    )
    fused.set_backend("fused")
    assert fused._plan is not None
    assert np.array_equal(
        fused.predict(x, batch_size=64), plain.predict(x, batch_size=64)
    )


# ----------------------------------------------------------------------
# Fallback exports: escalation and weight-only
# ----------------------------------------------------------------------
def test_fused_matches_after_escalation():
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        first = next(iter(quantizer.layers))
        quantizer.escalate_layer(first, bits=8)
        x = entry.dataset.x_test[:64]
        reference = _hook_logits(entry, x)
        plain = quantizer.freeze(model_name="vgg16")
        fused = quantizer.freeze(model_name="vgg16", backend="fused")
    finally:
        quantizer.remove()
    out64 = fused.predict(x, batch_size=64)
    assert np.array_equal(plain.predict(x, batch_size=64), out64)
    assert np.abs(out64 - reference).max() <= 1e-9
    fused.astype(np.float32)
    out32 = fused.predict(x, batch_size=64)
    assert np.array_equal(np.argmax(out32, axis=1), np.argmax(reference, axis=1))


def test_fused_weight_only_runs_per_layer_fallback():
    entry = trained_model("vit")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        x = entry.dataset.x_test[:64]
        plain = quantizer.freeze(model_name="vit", weight_only=True)
        fused = quantizer.freeze(
            model_name="vit", weight_only=True, backend="fused"
        )
    finally:
        quantizer.remove()
    assert np.array_equal(
        plain.predict(x, batch_size=64), fused.predict(x, batch_size=64)
    )
    plain.astype(np.float32)
    fused.astype(np.float32)
    assert np.array_equal(
        np.argmax(plain.predict(x, batch_size=64), axis=1),
        np.argmax(fused.predict(x, batch_size=64), axis=1),
    )


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
def test_serving_pool_fused_bit_identical(tmp_path):
    from repro.serve.pool import ServingPool

    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    path = tmp_path / "vgg16.npz"
    frozen.save(path)
    x = entry.dataset.x_test[:70]
    local = FrozenModel.load(path).astype(np.float32)
    local.set_backend("fused")
    expected = local.predict(x, batch_size=32, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=32, backend="fused") as pool:
        assert np.array_equal(pool.map_predict(x), expected)
        chunks = [x[:16], x[16:40], x[40:]]
        rows = np.stack([r.copy() for r in pool.map_predict_stream(chunks)])
        assert np.array_equal(rows, expected)


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
def test_profile_reports_plan_ops():
    entry, x, reference, plain, fused = _frozen_pair("vgg16")
    fused.astype(np.float32)
    report = fused.profile(x[:32], repeats=2)
    assert report["backend"] == "fused"
    assert report["dtype"] == "float32"
    assert report["total_seconds"] > 0
    assert report["ops"] and all(op["seconds"] >= 0 for op in report["ops"])
    labels = [op["label"] for op in report["ops"]]
    assert any("conv2d" in label for label in labels)
    shares = sum(op["share"] for op in report["ops"])
    assert 0.5 < shares <= 1.0 + 1e-6  # ops cover the forward minus dispatch
    assert "conv2d" in report["by_kind"]
    assert isinstance(report["table"], str) and "conv2d" in report["table"]
    with pytest.raises(ValueError):
        fused.profile(x[:4], repeats=0)


def test_profile_works_on_float_backend_tree():
    entry, x, reference, plain, fused = _frozen_pair("vgg16")
    plain.astype(np.float32)
    report = plain.profile(x[:32], repeats=1)
    assert report["backend"] == "float"
    assert report["ops"] and any(
        "FrozenConv2d" in op["label"] for op in report["ops"]
    )
    # instrumentation is removed afterwards: no wrapped forwards linger
    assert all(
        "forward" not in module.__dict__ for module in plain.root.iter_modules()
    )
