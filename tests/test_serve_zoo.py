"""Multi-tenant serving: one pool, a registry of models, per-tenant
bit-identity.

The fleet contract extends the single-model one: every tenant's pooled
results must be bit-identical to its own single-process
``spec.load().predict(x, batch_size, pad_batches=True)`` -- no matter
how requests from different tenants interleave, which worker served
them, how the per-worker LRU cache evicted and re-decoded checkpoints
along the way, or whether a worker was SIGKILLed mid-job and respawned.

The fixture builds three genuinely distinct tenants from one trained
model (4-bit, 2-bit, and weight-only 4-bit freezes of vgg16), so any
routing mix-up shows up as a wrong answer, not just a wrong label.
"""

import asyncio
import dataclasses
import os
import signal
import time

import numpy as np
import pytest

from repro.quant.framework import ModelQuantizer
from repro.serve import (
    AsyncServingClient,
    AutoscaleConfig,
    ModelRegistry,
    ModelSpec,
    PoolAutoscaler,
    PoolConfig,
    ServeConfig,
    ServingClient,
    ServingPool,
    serve,
)
from repro.zoo import calibration_batch, trained_model

BATCH = 16


def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def zoo(tmp_path_factory):
    """Three tenant specs over two frozen vgg16 checkpoints, plus the
    per-tenant single-process reference logits for ``x``."""
    entry = trained_model("vgg16")
    root = tmp_path_factory.mktemp("zoo")
    paths = {}
    for bits in (4, 3):
        quantizer = ModelQuantizer(entry.model, "ip-f", bits)
        quantizer.calibrate(calibration_batch(entry.dataset)).apply()
        try:
            frozen = quantizer.freeze(model_name="vgg16")
        finally:
            quantizer.remove()
        path = root / f"vgg16_int{bits}.npz"
        frozen.save(path)
        paths[bits] = path
    specs = {
        "vgg-int4": ModelSpec(paths[4]),
        "vgg-int3": ModelSpec(paths[3]),
        "vgg-int4-wo": ModelSpec(paths[4], weight_only=True),
    }
    x = entry.dataset.x_test[:70]
    refs = {
        name: spec.load().predict(x, batch_size=BATCH, pad_batches=True)
        for name, spec in specs.items()
    }
    # the tenants must be distinguishable, or routing bugs would pass
    assert not np.array_equal(refs["vgg-int4"], refs["vgg-int3"])
    return paths, specs, refs, x


@pytest.fixture(scope="module")
def zoo_pool(zoo):
    """A started 2-worker pool serving all three tenants (roomy cache)."""
    _, specs, refs, x = zoo
    registry = ModelRegistry(specs, default="vgg-int4")
    pool = ServingPool(
        registry, PoolConfig(n_workers=2, batch_size=BATCH, prefetch=2)
    ).start()
    yield pool, refs, x
    pool.close()


# ----------------------------------------------------------------------
# eager validation: a bad spec/config fails in the parent, pre-fork
# ----------------------------------------------------------------------
def test_model_spec_validates_dtype_and_backend_eagerly():
    with pytest.raises(ValueError, match="unknown serving dtype"):
        ModelSpec("ckpt.npz", dtype="not-a-dtype")
    with pytest.raises(ValueError, match="must be floating"):
        ModelSpec("ckpt.npz", dtype="int8")
    with pytest.raises(ValueError, match="unknown execution backend"):
        ModelSpec("ckpt.npz", backend="cuda")
    spec = ModelSpec("ckpt.npz", dtype="float64", backend="qgemm")
    assert spec.dtype == "float64"  # normalized numpy name
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.backend = "float"


def test_pool_config_validates_bounds():
    with pytest.raises(ValueError, match="n_workers must be >= 1"):
        PoolConfig(n_workers=0)
    with pytest.raises(ValueError, match="batch_size must be >= 1"):
        PoolConfig(batch_size=0)
    with pytest.raises(ValueError, match="prefetch must be >= 1"):
        PoolConfig(prefetch=0)
    with pytest.raises(ValueError, match="cache_budget_bytes must be >= 1"):
        PoolConfig(cache_budget_bytes=0)
    with pytest.raises(ValueError, match="unknown start_method"):
        PoolConfig(start_method="teleport")
    with pytest.raises(dataclasses.FrozenInstanceError):
        PoolConfig().n_workers = 8


def test_autoscale_config_validates_bounds():
    with pytest.raises(ValueError, match="min_workers must be >= 1"):
        AutoscaleConfig(min_workers=0)
    with pytest.raises(ValueError):
        AutoscaleConfig(min_workers=3, max_workers=2)
    with pytest.raises(ValueError, match="latency_budget_s"):
        AutoscaleConfig(latency_budget_s=0.0)


def test_registry_semantics():
    registry = ModelRegistry()
    registry.register("a", "ckpt_a.npz")  # str coerces to ModelSpec
    assert isinstance(registry["a"], ModelSpec)
    assert registry.default_model == "a"  # sole model is the default
    registry.register("b", ModelSpec("ckpt_b.npz"))
    assert registry.default_model is None  # ambiguous now
    registry.set_default("b")
    assert registry.default_model == "b"
    with pytest.raises(ValueError, match="already registered"):
        registry.register("a", "elsewhere.npz")
    with pytest.raises(ValueError):
        registry.register("bad name!", "ckpt.npz")  # not label-safe
    assert sorted(registry.names()) == ["a", "b"]
    assert "a" in registry and "nope" not in registry
    registry.freeze()
    with pytest.raises(RuntimeError, match="frozen"):
        registry.register("c", "ckpt_c.npz")


def test_serve_config_validation(zoo):
    _, specs, _, _ = zoo
    with pytest.raises(ValueError, match="at least one model"):
        ServeConfig(models={})
    with pytest.raises(ValueError):
        ServeConfig(models={"a": specs["vgg-int4"]}, default_model="nope")


def test_empty_registry_rejected():
    with pytest.raises(ValueError, match="no models"):
        ServingPool(ModelRegistry(), PoolConfig())


def test_resolution_requires_default_on_multi_model_pool(zoo):
    _, specs, _, _ = zoo
    pool = ServingPool(ModelRegistry(specs), PoolConfig(n_workers=1))
    with pytest.raises(ValueError, match="no .?default"):
        pool.resolve_model(None)
    with pytest.raises(KeyError, match="not registered"):
        pool.resolve_model("nope")
    assert pool.resolve_model("vgg-int3") == "vgg-int3"
    # a handle resolves back to its bound name
    assert pool.resolve_model(pool.model("vgg-int4")) == "vgg-int4"


# ----------------------------------------------------------------------
# legacy single-checkpoint constructor: one deprecation cycle
# ----------------------------------------------------------------------
def test_legacy_constructor_warns_and_still_serves(zoo):
    paths, _, refs, x = zoo
    with pytest.warns(DeprecationWarning, match="ModelRegistry"):
        pool = ServingPool(str(paths[4]), n_workers=1, batch_size=BATCH)
    try:
        pool.start()
        assert pool.stats()["models"] == ["default"]
        assert np.array_equal(pool.predict(x[:24]), refs["vgg-int4"][:24])
    finally:
        pool.close()


def test_legacy_constructor_still_validates(zoo):
    paths, _, _, _ = zoo
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="n_workers must be >= 1"):
            ServingPool(str(paths[4]), n_workers=0)


def test_registry_constructor_rejects_legacy_kwargs(zoo):
    _, specs, _, _ = zoo
    with pytest.raises(TypeError, match="unexpected keyword"):
        ServingPool(ModelRegistry(specs), PoolConfig(), dtype="float64")


# ----------------------------------------------------------------------
# routed serving surfaces (shared roomy-cache pool)
# ----------------------------------------------------------------------
def test_per_tenant_routing_and_default(zoo_pool):
    pool, refs, x = zoo_pool
    assert np.array_equal(pool.predict(x[:16]), refs["vgg-int4"][:16])
    assert np.array_equal(
        pool.predict(x[:16], model="vgg-int3"), refs["vgg-int3"][:16]
    )
    handle = pool.model("vgg-int4-wo")
    assert np.array_equal(handle.predict(x[:16]), refs["vgg-int4-wo"][:16])
    assert handle.spec.weight_only is True
    stats = pool.stats()
    assert stats["default_model"] == "vgg-int4"
    assert sorted(stats["models"]) == ["vgg-int3", "vgg-int4", "vgg-int4-wo"]
    assert sorted(stats["per_model"]) == sorted(stats["models"])
    for tenant in stats["per_model"].values():
        assert {"queue_depth", "backlog", "inflight"} <= set(tenant)


def test_clients_route_models(zoo_pool):
    pool, refs, x = zoo_pool
    client = ServingClient(pool, model="vgg-int3")
    assert np.array_equal(client.predict_one(x[0]), refs["vgg-int3"][0])
    # per-call override beats the bound default
    assert np.array_equal(
        client.predict(x[:8], model="vgg-int4"), refs["vgg-int4"][:8]
    )
    # an unbound client follows the pool default
    assert np.array_equal(
        ServingClient(pool).predict_one(x[1]), refs["vgg-int4"][1]
    )


def test_map_predict_routes_models(zoo_pool):
    pool, refs, x = zoo_pool
    assert np.array_equal(
        pool.map_predict(x, model="vgg-int3"), refs["vgg-int3"]
    )
    rows = list(
        pool.map_predict_stream([x[:32], x[32:48]], model="vgg-int4-wo")
    )
    assert np.array_equal(np.asarray(rows), refs["vgg-int4-wo"][:48])


def test_async_client_routes_models(zoo_pool):
    pool, refs, x = zoo_pool

    async def roundtrip():
        client = AsyncServingClient(pool, model="vgg-int3")
        batch = await client.predict(x[:8])
        row = await client.predict_one(x[0], model="vgg-int4")
        streamed = []
        async for r in client.stream_predict([x[:16]], model="vgg-int4-wo"):
            streamed.append(r)
        return batch, row, streamed

    batch, row, streamed = asyncio.run(roundtrip())
    assert np.array_equal(batch, refs["vgg-int3"][:8])
    assert np.array_equal(row, refs["vgg-int4"][0])
    assert np.array_equal(np.asarray(streamed), refs["vgg-int4-wo"][:16])


# ----------------------------------------------------------------------
# the tentpole property: bit-identity per tenant under interleaving
# and LRU eviction (cache budget < fleet working set)
# ----------------------------------------------------------------------
def test_interleaved_tenants_bit_identical_under_eviction(zoo):
    paths, specs, refs, x = zoo
    # room for roughly two of the three decoded checkpoints: serving
    # the third tenant must evict the least-recently-used one
    budget = os.path.getsize(paths[4]) + os.path.getsize(paths[3])
    registry = ModelRegistry(specs)
    pool = ServingPool(
        registry,
        PoolConfig(
            n_workers=2,
            batch_size=BATCH,
            prefetch=2,
            cache_budget_bytes=budget,
        ),
    ).start()
    try:
        names = sorted(specs)
        rng = np.random.default_rng(7)
        jobs = []
        for _ in range(24):
            name = names[int(rng.integers(len(names)))]
            lo = int(rng.integers(0, len(x) - 1))
            hi = int(rng.integers(lo + 1, len(x) + 1))
            jobs.append((name, lo, hi, pool.submit(x[lo:hi], model=name)))
        for name, lo, hi, future in jobs:
            assert np.array_equal(future.result(timeout=300), refs[name][lo:hi])

        def total(metrics, prefix):
            # metrics() keys render labels as ``name{model=...}``
            return sum(
                v for k, v in metrics.items() if k.startswith(prefix + "{")
            )

        metrics = pool.metrics()
        assert total(metrics, "serve.model_cache_loads_total") >= len(names)
        assert total(metrics, "serve.model_cache_evictions_total") >= 1
        assert total(metrics, "serve.model_cache_hits_total") >= 1
        # the budget held: resident bytes never exceeded it (gauge is
        # the post-eviction value from the most recent load)
        snapshot = pool.metrics_snapshot()
        for key, entry in snapshot.items():
            if key.startswith("serve.model_cache_resident_bytes"):
                assert entry["value"] <= budget
    finally:
        pool.close()


# ----------------------------------------------------------------------
# crash mid-flight: respawn preserves per-tenant routing and trace IDs
# ----------------------------------------------------------------------
def test_sigkill_respawn_preserves_tenant_routing(zoo):
    _, specs, refs, x = zoo
    registry = ModelRegistry(specs, default="vgg-int4")
    pool = ServingPool(
        registry, PoolConfig(n_workers=1, batch_size=BATCH)
    ).start()
    try:
        pool.predict(x[:8])  # healthy first
        victim = pool._workers[0]
        big = np.concatenate([x] * 20)
        f_int4 = pool.submit(big, model="vgg-int4")
        assert _wait_for(
            lambda: pool._inflight[0] and pool._task_queues[0].empty()
        )
        # backlog jobs for the other tenants, queued behind the doomed one
        f_int3 = pool.submit(x[:32], model="vgg-int3")
        f_wo = pool.submit(x[:16], model="vgg-int4-wo")
        os.kill(victim.pid, signal.SIGKILL)
        assert np.array_equal(
            f_int4.result(timeout=300),
            np.concatenate([refs["vgg-int4"]] * 20),
        )
        assert np.array_equal(f_int3.result(timeout=300), refs["vgg-int3"][:32])
        assert np.array_equal(f_wo.result(timeout=300), refs["vgg-int4-wo"][:16])
        assert pool.stats()["respawns"] >= 1
        requeues = [e for e in pool.trace_events() if e["name"] == "requeue"]
        assert requeues
        # the requeued job kept both its tenant and its trace identity
        assert requeues[0]["args"]["model"] == "vgg-int4"
        trace_id = requeues[0]["args"]["trace_id"]
        assert trace_id is not None
        names = [e["name"] for e in pool.trace_events(trace_id)]
        assert names.count("queue-wait") >= 2  # original + re-dispatch
        assert "compute" in names
    finally:
        pool.close()


# ----------------------------------------------------------------------
# serve() facade
# ----------------------------------------------------------------------
def test_serve_facade_full_config(zoo):
    _, specs, refs, x = zoo
    config = ServeConfig(
        models={"int4": specs["vgg-int4"], "int3": specs["vgg-int3"]},
        pool=PoolConfig(n_workers=1, batch_size=BATCH),
        autoscale=AutoscaleConfig(
            min_workers=1, max_workers=2, latency_budget_s=30.0,
            idle_window_s=60.0,
        ),
        default_model="int3",
    )
    with serve(config) as svc:
        assert svc.autoscaler is not None
        assert np.array_equal(svc.model().predict(x[:8]), refs["vgg-int3"][:8])
        assert np.array_equal(
            svc.model("int4").predict(x[:8]), refs["vgg-int4"][:8]
        )
        assert svc.stats()["default_model"] == "int3"
    assert not svc.pool.is_serving


def test_serve_facade_bare_registry(zoo):
    _, specs, refs, x = zoo
    registry = ModelRegistry({"solo": specs["vgg-int3"]})
    with serve(registry) as svc:
        assert svc.autoscaler is None
        assert np.array_equal(svc.model().predict(x[:8]), refs["vgg-int3"][:8])
    with pytest.raises(TypeError, match="ServeConfig or ModelRegistry"):
        serve(42)


# ----------------------------------------------------------------------
# per-tenant autoscaling policy (pure decide(), no processes)
# ----------------------------------------------------------------------
def _fleet_stats(workers, per_model, queue_depth=0, batch_size=4):
    return {
        "workers": workers,
        "backlog": 0,
        "inflight": 0,
        "ewma_service_s": 0.0,
        "queue_depth": queue_depth,
        "batch_size": batch_size,
        "per_model": per_model,
    }


def test_autoscaler_tenant_p99_trigger():
    scaler = PoolAutoscaler(None, max_workers=4, latency_budget_s=1.0)
    hot = {"hot": {"queue_depth": 6, "latency_p99_s": 2.5}}
    assert scaler.decide(_fleet_stats(1, hot, queue_depth=6), 0.0) == 1
    event = scaler.events[-1]
    assert event["reason"] == "tenant-p99"
    assert event["inputs"]["tenant"] == "hot"


def test_autoscaler_tenant_predicted_latency_trigger():
    scaler = PoolAutoscaler(None, max_workers=4, latency_budget_s=1.0)
    # 8 queued requests coalesce into >= 2 jobs of batch 4; at 1s per
    # job on 1 worker that predicts 2s > 1s budget
    hot = {"hot": {"queue_depth": 8, "ewma_service_s": 1.0}}
    assert scaler.decide(_fleet_stats(1, hot, queue_depth=8), 0.0) == 1
    assert scaler.events[-1]["reason"] == "tenant-predicted-latency"


def test_autoscaler_ignores_idle_tenants_and_max_bound():
    scaler = PoolAutoscaler(None, max_workers=4, latency_budget_s=1.0)
    # a stale p99 from finished traffic must not grow an idle fleet
    cold = {"cold": {"queue_depth": 0, "latency_p99_s": 99.0}}
    assert scaler.decide(_fleet_stats(2, cold), 0.0) == 0
    # and a hot tenant cannot push past max_workers
    hot = {"hot": {"queue_depth": 9, "latency_p99_s": 99.0}}
    assert scaler.decide(_fleet_stats(4, hot, queue_depth=9), 10.0) == 0


def test_autoscaler_queued_requests_block_idle_shrink():
    scaler = PoolAutoscaler(
        None, min_workers=1, max_workers=4, latency_budget_s=50.0,
        idle_window_s=1.0, cooldown_s=0.0,
    )
    # requests waiting in a tenant queue are not "idle", even with no
    # job-level backlog -- the idle clock must not run
    assert scaler.decide(_fleet_stats(2, {}, queue_depth=3), 0.0) == 0
    assert scaler.decide(_fleet_stats(2, {}, queue_depth=3), 5.0) == 0
    # queues drain: the idle window starts only now
    assert scaler.decide(_fleet_stats(2, {}, queue_depth=0), 5.0) == 0
    assert scaler.decide(_fleet_stats(2, {}, queue_depth=0), 6.5) == -1
    assert scaler.events[-1]["reason"] == "idle-window"
