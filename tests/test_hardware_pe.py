"""TypeFusion MAC tests (Figs. 7-8): exactness, overflow bounds, fusion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import FlintType, IntType, PoTType
from repro.hardware.pe import (
    ACCUMULATOR_BITS,
    DecodedOperand,
    MACOverflowError,
    TypeFusionMAC,
    decode_operand,
    dot_product,
    fused_int8_mac,
)

RNG = np.random.default_rng(6)
KIND_TO_TYPE = {
    "flint": FlintType(4, signed=True),
    "int": IntType(4, signed=True),
    "pot": PoTType(4, signed=True),
}


class TestMACBasics:
    def test_multiply_shifts(self):
        mac = TypeFusionMAC(4)
        a = DecodedOperand(base=2, exponent=4)  # 32
        b = DecodedOperand(base=1, exponent=2)  # 4
        assert mac.multiply(a, b) == 128

    def test_signed_multiply(self):
        mac = TypeFusionMAC(4)
        a = DecodedOperand(base=3, exponent=0, sign=1)  # -3
        b = DecodedOperand(base=6, exponent=0)
        assert mac.multiply(a, b) == -18

    def test_accumulate(self):
        mac = TypeFusionMAC(4)
        mac.accumulate(100)
        mac.accumulate(-30)
        assert mac.accumulator == 70
        mac.reset()
        assert mac.accumulator == 0

    def test_overflow_detected(self):
        mac = TypeFusionMAC(4, accumulator_bits=8)
        big = DecodedOperand(base=14, exponent=0)
        with pytest.raises(MACOverflowError):
            mac.multiply(big, DecodedOperand(base=14, exponent=0))

    def test_op_counters(self):
        mac = TypeFusionMAC(4)
        mac.mac(DecodedOperand(2, 0), DecodedOperand(3, 0))
        assert mac.mul_count == 1
        assert mac.acc_count == 1


class TestPaperClaims:
    def test_4bit_flint_products_fit_16_bits(self):
        """Sec. V-B: any 4-bit flint x flint product fits the 16-bit path."""
        mac = TypeFusionMAC(4, accumulator_bits=ACCUMULATOR_BITS)
        codes = range(16)
        for ca in codes:
            for cb in codes:
                a = decode_operand(ca, "flint", 4, True)
                b = decode_operand(cb, "flint", 4, True)
                mac.multiply(a, b)  # must never raise

    def test_unsigned_4bit_flint_product_bound(self):
        """Max unsigned product is 64*64 = 2^12, within 16-bit int."""
        mac = TypeFusionMAC(4)
        a = decode_operand(0b1000, "flint", 4, False)
        assert mac.multiply(a, a) == 4096

    def test_float_pe_unsupported_kind(self):
        with pytest.raises(KeyError):
            decode_operand(0, "float", 4, True)


class TestDotProducts:
    @pytest.mark.parametrize("kind_a", ["flint", "int", "pot"])
    @pytest.mark.parametrize("kind_b", ["flint", "int", "pot"])
    def test_mixed_type_dot_exact(self, kind_a, kind_b):
        """Any type pairing computes the exact dot product (TypeFusion)."""
        ta, tb = KIND_TO_TYPE[kind_a], KIND_TO_TYPE[kind_b]
        va = RNG.choice(ta.grid, size=24)
        vb = RNG.choice(tb.grid, size=24)
        hw = dot_product(ta.encode(va), tb.encode(vb), kind_a, kind_b, 4, True)
        assert hw == int(np.dot(va, vb))

    def test_unsigned_dot(self):
        flint = FlintType(4, signed=False)
        pot = PoTType(4, signed=False)
        va = RNG.choice(flint.grid[flint.grid <= 14], size=16)
        vb = RNG.choice(pot.grid[pot.grid <= 8], size=16)
        hw = dot_product(flint.encode(va), pot.encode(vb), "flint", "pot", 4, False)
        assert hw == int(np.dot(va, vb))


class TestInt8Fusion:
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_fused_exact(self, a, b):
        assert fused_int8_mac(a, b) == a * b

    def test_requires_four_pes(self):
        with pytest.raises(ValueError):
            fused_int8_mac(1, 1, pes=[TypeFusionMAC(4)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fused_int8_mac(256, 1)


@given(
    kind_a=st.sampled_from(["flint", "int", "pot"]),
    kind_b=st.sampled_from(["flint", "int", "pot"]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_property_random_dot_products(kind_a, kind_b, seed):
    rng = np.random.default_rng(seed)
    ta, tb = KIND_TO_TYPE[kind_a], KIND_TO_TYPE[kind_b]
    va = rng.choice(ta.grid, size=12)
    vb = rng.choice(tb.grid, size=12)
    hw = dot_product(ta.encode(va), tb.encode(vb), kind_a, kind_b, 4, True)
    assert hw == int(np.dot(va, vb))
