"""Tests for quantization kernels, scale search and type selection."""

import numpy as np
import pytest

from repro.data import sample_distribution
from repro.dtypes import FlintType, IntType, candidate_list
from repro.quant import (
    Granularity,
    TensorQuantizer,
    quantize_dequantize,
    search_scale,
    select_type,
)
from repro.quant.functional import channel_scales, tensor_scale
from repro.quant.scale_search import mse_for_scale
from repro.quant.selection import selection_histogram

RNG = np.random.default_rng(3)


class TestFunctional:
    def test_per_tensor_quantize(self):
        dtype = IntType(4, signed=True)
        x = np.array([0.1, 0.5, -0.7])
        q = quantize_dequantize(x, dtype, scale=0.1)
        assert np.allclose(q, [0.1, 0.5, -0.7])

    def test_per_channel_quantize(self):
        dtype = IntType(4, signed=True)
        x = np.stack([np.full(8, 0.7), np.full(8, 70.0)])
        scales = np.array([0.1, 10.0])
        q = quantize_dequantize(x, dtype, scales, axis=0)
        assert np.allclose(q[0], 0.7)
        assert np.allclose(q[1], 70.0)

    def test_per_channel_requires_axis(self):
        with pytest.raises(ValueError):
            quantize_dequantize(np.ones((2, 2)), IntType(4, True), np.ones(2))

    def test_per_channel_shape_check(self):
        with pytest.raises(ValueError):
            quantize_dequantize(np.ones((2, 2)), IntType(4, True), np.ones(3), axis=0)

    def test_tensor_scale_maps_peak_to_grid_top(self):
        dtype = IntType(4, signed=True)
        x = np.array([-1.4, 0.7])
        assert np.isclose(tensor_scale(x, dtype), 1.4 / 7)

    def test_channel_scales_shape(self):
        x = RNG.normal(size=(4, 3, 3, 3))
        scales = channel_scales(x, IntType(4, True), axis=0)
        assert scales.shape == (4,)
        assert np.all(scales > 0)

    def test_unsigned_scale_ignores_negatives(self):
        dtype = IntType(4, signed=False)
        x = np.array([-100.0, 3.0])
        assert np.isclose(tensor_scale(x, dtype), 3.0 / 15)

    def test_clip_ratio_validation(self):
        with pytest.raises(ValueError):
            tensor_scale(np.ones(3), IntType(4, True), clip_ratio=0.0)


class TestScaleSearch:
    def test_search_beats_naive_max_scaling(self):
        x = sample_distribution("gaussian", 8192, seed=0)
        dtype = IntType(4, signed=True)
        naive = mse_for_scale(x, dtype, tensor_scale(x, dtype))
        best = search_scale(x, dtype)
        assert best.mse <= naive

    def test_clip_ratio_in_range(self):
        x = sample_distribution("laplace", 2048, seed=1)
        result = search_scale(x, FlintType(4, True))
        assert 0.0 < result.clip_ratio <= 1.0

    def test_empty_tensor_rejected(self):
        with pytest.raises(ValueError):
            search_scale(np.array([]), IntType(4, True))

    def test_mse_for_scale_zero_for_exact_grid(self):
        dtype = IntType(4, signed=True)
        x = np.arange(-7, 8, dtype=np.float64)
        assert mse_for_scale(x, dtype, 1.0) == 0.0

    def test_uniform_prefers_full_range(self):
        """On uniform data the best clip keeps (nearly) the full range."""
        x = RNG.uniform(-1, 1, 16384)
        result = search_scale(x, IntType(4, True))
        assert result.clip_ratio > 0.8


class TestSelection:
    def test_uniform_selects_int(self):
        x = sample_distribution("uniform", 8192, seed=0)
        choice = select_type(x, candidate_list("ip-f", 4, signed=True))
        assert choice.kind == "int"

    def test_heavy_tail_avoids_int(self):
        x = sample_distribution("gaussian_outliers", 8192, seed=0)
        choice = select_type(x, candidate_list("ip-f", 4, signed=True))
        assert choice.kind in ("pot", "flint")

    def test_choice_reports_all_candidates(self):
        x = sample_distribution("gaussian", 1024, seed=0)
        choice = select_type(x, candidate_list("fip-f", 4, signed=True))
        assert len(choice.per_type_mse) == 4
        assert choice.mse == min(choice.per_type_mse.values())

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_type(np.ones(4), [])

    def test_histogram(self):
        xs = [
            sample_distribution("uniform", 1024, seed=i) for i in range(3)
        ]
        choices = [select_type(x, candidate_list("ip-f", 4, True)) for x in xs]
        hist = selection_histogram(choices)
        assert sum(hist.values()) == 3

    def test_more_candidates_never_worse(self):
        """Adding candidates can only lower (or keep) the selected MSE."""
        for family in ["uniform", "gaussian", "laplace", "student_t"]:
            x = sample_distribution(family, 4096, seed=7)
            small = select_type(x, candidate_list("int", 4, True))
            large = select_type(x, candidate_list("ip-f", 4, True))
            assert large.mse <= small.mse + 1e-15


class TestTensorQuantizer:
    def test_lifecycle(self):
        q = TensorQuantizer(candidate_list("ip-f", 4, True))
        assert not q.is_calibrated
        with pytest.raises(RuntimeError):
            q(np.ones(4))
        q.calibrate(RNG.normal(size=1024))
        assert q.is_calibrated
        out = q(RNG.normal(size=64))
        assert out.shape == (64,)

    def test_per_channel_scales(self):
        x = np.stack([RNG.normal(size=64) * 0.1, RNG.normal(size=64) * 10.0])
        q = TensorQuantizer(
            candidate_list("ip-f", 4, True),
            granularity=Granularity.PER_CHANNEL,
            channel_axis=0,
        )
        q.calibrate(x)
        assert q.scales.shape == (2,)
        assert q.scales[1] > 10 * q.scales[0]

    def test_per_channel_beats_per_tensor_on_scaled_channels(self):
        x = np.stack([RNG.normal(size=256) * 0.05, RNG.normal(size=256) * 5.0])
        per_tensor = TensorQuantizer(candidate_list("int", 4, True))
        per_tensor.calibrate(x)
        per_channel = TensorQuantizer(
            candidate_list("int", 4, True), Granularity.PER_CHANNEL, 0
        )
        per_channel.calibrate(x)
        assert per_channel.observed_mse(x) < per_tensor.observed_mse(x)

    def test_set_dtype_escalation(self):
        x = RNG.normal(size=512)
        q = TensorQuantizer(candidate_list("ip-f", 4, True))
        q.calibrate(x)
        mse4 = q.observed_mse(x)
        q.set_dtype(IntType(8, True), x)
        assert q.bits == 8
        assert q.observed_mse(x) < mse4

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            TensorQuantizer([])
