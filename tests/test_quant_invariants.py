"""Cross-cutting quantization invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import sample_distribution
from repro.dtypes import FlintType, IntType, PoTType
from repro.quant import search_scale
from repro.quant.scale_search import mse_for_scale


@given(
    family=st.sampled_from(["uniform", "gaussian", "laplace", "student_t"]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_more_bits_never_hurt_int(family, seed):
    """MSE(int8) <= MSE(int6) <= MSE(int4) on any tensor."""
    x = sample_distribution(family, 2048, seed=seed)
    mses = [search_scale(x, IntType(b, True), num_coarse=16, num_fine=6).mse
            for b in (4, 6, 8)]
    assert mses[2] <= mses[1] * 1.001 <= mses[0] * 1.001 * 1.001


@given(
    family=st.sampled_from(["gaussian", "laplace"]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_more_bits_never_hurt_flint(family, seed):
    x = sample_distribution(family, 2048, seed=seed)
    mse4 = search_scale(x, FlintType(4, True), num_coarse=16, num_fine=6).mse
    mse6 = search_scale(x, FlintType(6, True), num_coarse=16, num_fine=6).mse
    assert mse6 <= mse4 * 1.001


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_scale_search_is_optimal_within_sweep(seed):
    """No coarse-sweep point beats the returned scale."""
    x = sample_distribution("gaussian", 1024, seed=seed)
    dtype = FlintType(4, True)
    result = search_scale(x, dtype)
    base = float(np.max(np.abs(x))) / dtype.max_value
    for ratio in np.geomspace(0.01, 1.0, 24):
        assert result.mse <= mse_for_scale(x, dtype, base * float(ratio)) + 1e-15


@given(
    scale=st.floats(min_value=1e-2, max_value=1e2),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_mse_scales_quadratically_with_tensor_scale(scale, seed):
    """Quantizing s*x at scale s*opt gives s^2 times the MSE of x at opt."""
    x = sample_distribution("gaussian", 1024, seed=seed)
    dtype = IntType(4, True)
    base = search_scale(x, dtype)
    scaled_mse = mse_for_scale(x * scale, dtype, base.scale * scale)
    assert np.isclose(scaled_mse, base.mse * scale * scale, rtol=1e-6, atol=1e-18)


@pytest.mark.parametrize("bits", [4, 6, 8])
def test_flint_product_fits_double_width_accumulator(bits):
    """Generalised Sec. V-B claim: b-bit flint products fit 4b-bit int.

    Max unsigned magnitude is 2^(2b-2), so a product is at most
    2^(4b-4), within a (4b-2)-bit signed accumulator.
    """
    flint = FlintType(bits, signed=False)
    top = flint.max_value
    assert top * top == 2 ** (4 * bits - 4)
    assert top * top < 2 ** (4 * bits - 2 - 1)


def test_zero_always_exactly_representable():
    for dtype in (IntType(4, True), PoTType(4, True), FlintType(4, True)):
        assert dtype.quantize(np.array([0.0]))[0] == 0.0


def test_quantization_error_bounded_by_half_gap():
    """Within range, |x - q(x)| <= half the local grid gap."""
    dtype = FlintType(4, signed=False)
    grid = dtype.grid
    rng = np.random.default_rng(0)
    x = rng.uniform(0, dtype.max_value, size=2048)
    q = dtype.quantize(x)
    idx = np.searchsorted(grid, x)
    idx = np.clip(idx, 1, grid.size - 1)
    gap = grid[idx] - grid[idx - 1]
    assert np.all(np.abs(x - q) <= gap / 2 + 1e-12)
